"""Tests for the shared utilities (rng, tables) and error types."""

import numpy as np
import pytest

from repro.errors import (
    ConstructionError,
    ParameterError,
    ReproError,
    SimulationError,
)
from repro.utils.rng import as_rng, spawn_seeds
from repro.utils.tables import render_table


class TestRng:
    def test_int_seed(self):
        a, b = as_rng(42), as_rng(42)
        assert a.integers(1000) == b.integers(1000)

    def test_none_is_fixed(self):
        assert as_rng(None).integers(1000) == as_rng(0).integers(1000)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)
        assert spawn_seeds(7, 5) != spawn_seeds(8, 5)
        assert len(spawn_seeds(0, 12)) == 12

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(3, 50)
        assert len(set(seeds)) == 50


class TestRenderTable:
    def test_basic(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_column_order(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].split() == ["b", "a"]

    def test_missing_cells(self):
        text = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text

    def test_empty(self):
        assert "(no rows)" in render_table([])

    def test_float_formatting(self):
        text = render_table([{"x": 0.123456, "y": 123456.0, "z": 0.0001}])
        assert "0.123" in text
        assert "1.23e+05" in text

    def test_title(self):
        text = render_table([{"a": 1}], title="T")
        assert text.startswith("T\n")


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ParameterError, ReproError)
        assert issubclass(ParameterError, ValueError)
        assert issubclass(ConstructionError, RuntimeError)
        assert issubclass(SimulationError, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ConstructionError("x")
