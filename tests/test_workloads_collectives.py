"""Collective schedules through the live simulators, plus drain edges.

The hypothesis file (``test_property_collectives.py``) pins the
generators symbolically; this file runs them: delivery completeness and
identical chunk-ownership end states on both engines, seed determinism,
the exact-boundary drain invariants (chunk-completion times filled when
the run terminates exactly at the last delivery cycle; epoch snapshots
excluding same-instant events), and the capability wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BackendCapabilityError, SimulationError
from repro.routing import RoutingTables, make_routing
from repro.sim import BatchedSimulator, SimConfig
from repro.topology import build_lps
from repro.workloads import CollectiveMotif, run_collective, run_motif
from repro.workloads.collectives import COLLECTIVES


@pytest.fixture(scope="module")
def env():
    topo = build_lps(3, 5)
    tables = RoutingTables(topo.graph)
    return topo, tables


def _run(env, coll, algo, backend, p=8, seed=0, total=4096):
    topo, tables = env
    return run_collective(
        topo, make_routing("minimal", tables, seed=seed),
        CollectiveMotif(coll, algo, p, total_bytes=total),
        SimConfig(concentration=2), placement_seed=seed + 1,
        backend=backend,
    )


_COMBOS = [
    ("allreduce", "ring"),
    ("allreduce", "rabenseifner"),
    ("allgather", "recursive-doubling"),
    ("reduce-scatter", "binary-tree"),
]


class TestBothBackends:
    @pytest.mark.parametrize("coll,algo", _COMBOS,
                             ids=[f"{c}-{a}" for c, a in _COMBOS])
    @pytest.mark.parametrize("p", [8, 11])
    def test_drains_with_identical_ownership(self, env, coll, algo, p):
        ev = _run(env, coll, algo, "event", p=p)
        bt = _run(env, coll, algo, "batched", p=p)
        for out in (ev, bt):
            assert out["delivered"] == out["n_messages"]
            assert out["delivered_fraction"] == 1.0
            assert out["ownership_complete"] is True
            assert len(out["chunk_done_ns"]) == p
        # The chunk-ownership end state must be identical across engines.
        assert ev["final_owners"] == bt["final_owners"]
        assert ev["n_chunks"] == bt["n_chunks"]
        assert ev["n_steps"] == bt["n_steps"]

    @pytest.mark.parametrize("backend", ["event", "batched"])
    def test_completion_filled_at_terminal_delivery_cycle(
        self, env, backend
    ):
        # Exact-boundary drain: every collective run terminates at its
        # last delivery cycle, and the chunk completed by that very
        # delivery must still get a finite completion time — the last
        # chunk completes *exactly* at the makespan, not before, and is
        # not dropped by an exclusive boundary comparison.
        out = _run(env, "allreduce", "ring", backend, p=6)
        assert out["chunk_done_max_ns"] == out["makespan_ns"]
        assert all(np.isfinite(out["chunk_done_ns"]))
        assert all(t <= out["makespan_ns"] for t in out["chunk_done_ns"])

    def test_seed_determinism(self, env):
        a = _run(env, "allgather", "ring", "event", seed=3)
        b = _run(env, "allgather", "ring", "event", seed=3)
        assert a == b
        moved = _run(env, "allgather", "ring", "event", seed=4)
        assert moved["makespan_ns"] != a["makespan_ns"]

    def test_runs_unchanged_through_run_motif(self, env):
        # The lowering is a plain motif DAG: run_motif executes it with
        # no collective-specific support.
        topo, tables = env
        motif = CollectiveMotif("reduce-scatter", "ring", 8)
        out = run_motif(
            topo, make_routing("minimal", tables, seed=0), motif,
            SimConfig(concentration=2), placement_seed=1,
            backend="batched",
        )
        assert out["delivered"] == out["n_messages"] == len(motif.generate())
        assert out["motif"] == "reduce-scatter/ring"


class TestChunkCompletion:
    def test_missing_delivery_detected(self, env):
        motif = CollectiveMotif("allreduce", "ring", 4)
        n = len(motif.generate())
        t_del = np.zeros(n)
        t_del[-1] = np.inf  # the boundary delivery never drained
        with pytest.raises(SimulationError, match="never completed"):
            motif.chunk_completion_times(t_del)

    def test_completion_is_max_over_completing_deps(self, env):
        motif = CollectiveMotif("allgather", "ring", 4)
        t_del = np.arange(len(motif.generate()), dtype=float)
        times = motif.chunk_completion_times(t_del)
        deps = motif.completion_deps()
        assert times == [float(max(d)) for d in deps]

    def test_bigger_payload_takes_longer(self, env):
        small = _run(env, "allreduce", "ring", "event", total=1 << 10)
        big = _run(env, "allreduce", "ring", "event", total=1 << 16)
        assert big["makespan_ns"] > small["makespan_ns"]

    def test_reduce_scatter_owner_contract(self):
        ring = CollectiveMotif("reduce-scatter", "ring", 5)
        assert ring.final_owners() == [4, 0, 1, 2, 3]
        tree = CollectiveMotif("reduce-scatter", "binary-tree", 5)
        assert tree.final_owners() == [0, 1, 2, 3, 4]


class TestEpochBoundary:
    def test_epoch_snapshot_excludes_same_instant_events(self, env):
        # Event-engine parity: fault events enter the heap before any
        # traffic exists, so at equal timestamps the fault pops first and
        # its epoch snapshot excludes an injection or delivery landing
        # exactly at the epoch time.  The batched drain must use the same
        # strict boundary — this is the run(until=)-style edge where a
        # cell terminates exactly at the last delivery cycle.
        topo, tables = env
        net = BatchedSimulator(
            topo, make_routing("minimal", tables, seed=0),
            SimConfig(concentration=2), tables=tables,
        )
        net._msg_sizes = None
        net.stats.epochs.append({
            "t": 100.0, "label": "recover", "injected": 0, "delivered": 0,
            "dropped": 0, "requeued": 0, "bytes_delivered": 0,
        })
        t0 = np.array([50.0, 100.0, 150.0])
        t_del = np.array([100.0, 200.0, 250.0])
        net._fill_epochs(t0, t_del, np.ones(3, dtype=bool))
        ep = net.stats.epochs[0]
        assert ep["injected"] == 1  # t0 == 100.0 lands after the boundary
        assert ep["delivered"] == 0  # t_del == 100.0 likewise
        assert ep["bytes_delivered"] == 0


class TestCapabilityWiring:
    def test_collectives_supported_on_both_backends(self):
        from repro.sim import capabilities as cap

        assert cap.supported_backends(cap.COLLECTIVES) == ("event", "batched")

    def test_unknown_backend_refused_at_spec_time(self, env):
        with pytest.raises(BackendCapabilityError, match="unknown"):
            _run(env, "allreduce", "ring", "threaded")

    def test_every_collective_listed(self):
        assert set(COLLECTIVES) == {
            "allreduce", "allgather", "reduce-scatter"
        }
