"""Tests for the discrete-event network simulator."""

import numpy as np
import pytest

from repro.routing import RoutingTables, make_routing
from repro.sim import NetworkSimulator, SimConfig
from repro.topology import build_canonical_dragonfly, build_lps


@pytest.fixture(scope="module")
def small_net_parts():
    topo = build_lps(3, 5)  # 120 routers, radix 4
    tables = RoutingTables(topo.graph)
    return topo, tables


def _fresh_net(topo, tables, routing="minimal", **cfg_kw):
    cfg = SimConfig(concentration=2, **cfg_kw)
    policy = make_routing(routing, tables, seed=0)
    return NetworkSimulator(topo, policy, cfg, tables=tables)


class TestSinglePacket:
    def test_latency_decomposition(self, small_net_parts):
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables)
        src_ep, dst_ep = 0, 10  # routers 0 and 5
        hops = tables.distance(0, 5)
        net.send(src_ep, dst_ep)
        stats = net.run()
        assert stats.summary()["delivered"] == 1
        cfg = net.config
        ser = cfg.packet_bytes / cfg.bytes_per_ns
        # NIC serialisation + per-hop (switch + serialisation) + ejection.
        expect = (
            ser  # NIC
            + cfg.link_latency_ns
            + hops * (cfg.switch_latency_ns + ser + cfg.link_latency_ns)
            + cfg.switch_latency_ns
            + ser
            + cfg.link_latency_ns
        )
        assert stats.latencies_ns[0] == pytest.approx(expect, rel=1e-9)
        assert stats.hops[0] == hops

    def test_self_send_instant(self, small_net_parts):
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables)
        seen = []
        net.on_delivery = lambda pkt, t: seen.append((pkt.dst_ep, t))
        out = net.send(3, 3)
        assert out is None
        assert seen == [(3, 0.0)]

    def test_same_router_different_endpoint(self, small_net_parts):
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables)
        net.send(0, 1)  # both on router 0
        stats = net.run()
        assert stats.summary()["delivered"] == 1
        assert stats.hops[0] == 0  # no network hop, straight to ejection


class TestSerialization:
    def test_nic_serialises_back_to_back(self, small_net_parts):
        # Two packets from the same endpoint: second is delayed by one
        # serialisation time at the NIC.
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables)
        net.send(0, 10)
        net.send(0, 10)
        stats = net.run()
        lat = sorted(stats.latencies_ns)
        ser = net.config.packet_bytes / net.config.bytes_per_ns
        assert lat[1] - lat[0] == pytest.approx(ser, rel=1e-6)

    def test_ejection_port_contention(self, small_net_parts):
        # Many senders to one endpoint: deliveries are spaced by the
        # ejection serialisation time.
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables)
        deliveries = []
        net.on_delivery = lambda pkt, t: deliveries.append(t)
        for src in range(2, 30, 2):
            net.send(src, 0)
        net.run()
        deliveries.sort()
        ser = net.config.packet_bytes / net.config.bytes_per_ns
        gaps = np.diff(deliveries)
        assert np.all(gaps >= ser - 1e-6)


class TestQueueAccounting:
    def test_queue_bytes_return_to_zero(self, small_net_parts):
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables)
        rng = np.random.default_rng(0)
        for _ in range(200):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d))
        net.run()
        assert sum(net._port_bytes) == 0
        assert not any(net._port_busy)

    def test_max_queue_recorded_under_hotspot(self, small_net_parts):
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables)
        for src in range(20, 80):
            net.send(src, 0)
        stats = net.run()
        assert stats.max_queue_bytes > 0


class TestRoutingIntegration:
    @pytest.mark.parametrize("routing", ["minimal", "valiant", "ugal"])
    def test_all_policies_deliver(self, small_net_parts, routing):
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables, routing=routing)
        rng = np.random.default_rng(1)
        n = 300
        for _ in range(n):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s == d:
                continue
            net.send(int(s), int(d))
        stats = net.run()
        assert stats.summary()["delivered"] == stats.n_injected

    def test_minimal_mean_hops_matches_graph(self, small_net_parts):
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables)
        rng = np.random.default_rng(2)
        for _ in range(500):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s // 2 == d // 2:
                continue  # skip same-router pairs for a clean comparison
            net.send(int(s), int(d))
        stats = net.run()
        from repro.graphs.metrics import average_distance

        assert np.mean(stats.hops) == pytest.approx(
            average_distance(topo.graph), rel=0.1
        )

    def test_vc_budget_respected(self, small_net_parts):
        topo, tables = small_net_parts
        net = _fresh_net(topo, tables, routing="valiant")
        assert net.n_vcs == 2 * tables.diameter + 1


class TestDeterminism:
    def test_same_seed_same_results(self, small_net_parts):
        topo, tables = small_net_parts

        def one_run():
            net = _fresh_net(topo, tables, routing="ugal")
            rng = np.random.default_rng(3)
            for _ in range(200):
                s, d = rng.integers(0, net.n_endpoints, 2)
                if s != d:
                    net.send(int(s), int(d))
            return net.run().summary()

        a, b = one_run(), one_run()
        assert a == b
