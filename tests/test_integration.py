"""End-to-end integration tests: build → analyze → route → simulate → lay out.

One pipeline per topology family, exercising the full public API surface
the way examples/quickstart.py does, with cross-layer consistency checks.
"""

import numpy as np
import pytest

from repro import (
    NetworkSimulator,
    RoutingTables,
    SimConfig,
    Sweep3DMotif,
    average_distance,
    bisection_bandwidth,
    build_bundlefly,
    build_canonical_dragonfly,
    build_lps,
    build_slimfly,
    diameter,
    layout_topology,
    make_routing,
    make_traffic,
    place_ranks,
    power_report,
    run_motif,
)
from repro.sim.traffic import OpenLoopSource
from repro.spectral import lambda_g, mu1


FAMILIES = {
    "LPS": lambda: build_lps(11, 7),
    "SlimFly": lambda: build_slimfly(9),
    "BundleFly": lambda: build_bundlefly(13, 3),
    "DragonFly": lambda: build_canonical_dragonfly(12),
}


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def pipeline(request):
    topo = FAMILIES[request.param]()
    tables = RoutingTables(topo.graph)
    return topo, tables


class TestFullPipeline:
    def test_structure_and_spectrum_consistent(self, pipeline):
        topo, tables = pipeline
        d = diameter(topo.graph, sample=1 if topo.vertex_transitive else None)
        assert tables.diameter == d
        assert average_distance(topo.graph) <= d
        assert 0 < mu1(topo.graph) < 1.5
        assert lambda_g(topo.graph) < topo.radix

    def test_open_loop_simulation(self, pipeline):
        topo, tables = pipeline
        net = NetworkSimulator(
            topo, make_routing("ugal", tables, seed=0),
            SimConfig(concentration=2), tables=tables,
        )
        n_ranks = 128
        r2e = place_ranks(n_ranks, net.n_endpoints, seed=0)
        pat = make_traffic("transpose", n_ranks)
        for r in range(n_ranks):
            net.add_open_loop_source(
                OpenLoopSource(r, int(r2e[r]), pat, r2e, 0.4, 5, seed=r)
            )
        s = net.run().summary()
        assert s["delivered"] > 0
        assert s["mean_hops"] <= 2 * tables.diameter + 1
        assert s["max_latency_ns"] >= s["mean_latency_ns"]

    def test_motif_execution(self, pipeline):
        topo, tables = pipeline
        out = run_motif(
            topo,
            make_routing("minimal", tables, seed=0),
            Sweep3DMotif((8, 8), sweeps=1),
            SimConfig(concentration=2),
        )
        assert out["delivered"] >= 0
        assert out["makespan_ns"] > 0

    def test_layout_and_power(self, pipeline):
        topo, _ = pipeline
        layout = layout_topology(topo, seed=0, em_iters=3, refine_sweeps=2)
        cut = bisection_bandwidth(topo.graph, repeats=1, seed=0)
        rep = power_report(layout, cut)
        assert rep["electrical_links"] + rep["optical_links"] == topo.n_links
        assert rep["total_power_w"] > 0
        assert layout.wire_lengths.min() >= 2.0

    def test_finite_buffer_run_completes(self, pipeline):
        topo, tables = pipeline
        cfg = SimConfig(concentration=2, finite_buffers=True)
        net = NetworkSimulator(
            topo, make_routing("minimal", tables, seed=1), cfg, tables=tables
        )
        rng = np.random.default_rng(2)
        for _ in range(200):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d))
        stats = net.run()
        assert not stats.deadlocked
        assert stats.summary()["delivered"] == stats.n_injected


class TestSimControls:
    def test_run_until_cuts_short(self):
        topo = FAMILIES["LPS"]()
        tables = RoutingTables(topo.graph)
        net = NetworkSimulator(topo, make_routing("minimal", tables),
                               SimConfig(concentration=2), tables=tables)
        for src in range(0, 100, 2):
            net.send(src, (src + 37) % net.n_endpoints)
        stats = net.run(until=500.0)  # far too short for everything
        assert len(stats.latencies_ns) < stats.n_injected
        assert not stats.deadlocked  # early stop is not a deadlock verdict

    def test_max_events_guard(self):
        from repro.errors import SimulationError

        topo = FAMILIES["LPS"]()
        tables = RoutingTables(topo.graph)
        net = NetworkSimulator(topo, make_routing("minimal", tables),
                               SimConfig(concentration=2), tables=tables)
        for src in range(0, 100, 2):
            net.send(src, (src + 37) % net.n_endpoints)
        with pytest.raises(SimulationError):
            net.run(max_events=10)
