"""Tests for the UGAL-G (global information) routing variant."""

import numpy as np
import pytest

from repro.graphs.generators import hypercube_graph
from repro.routing import RoutingTables, make_routing
from repro.routing.algorithms import UGALGRouting
from repro.sim import NetworkSimulator, SimConfig
from repro.sim.packet import Packet
from repro.topology import build_lps


@pytest.fixture(scope="module")
def tables():
    return RoutingTables(hypercube_graph(4))


class _FakeNet:
    def __init__(self, tables, hot_edges=()):
        self.tables = tables
        self.hot = set(hot_edges)

    def output_queue_bytes(self, router, nxt):
        return 5_000_000 if (router, nxt) in self.hot else 0


class TestUGALG:
    def test_factory(self, tables):
        assert isinstance(make_routing("ugal-g", tables), UGALGRouting)

    def test_idle_network_goes_minimal(self, tables):
        policy = UGALGRouting(tables, seed=0)
        net = _FakeNet(tables)
        for _ in range(30):
            pkt = Packet(0, 0, 0, 4096, 0.0, 15)
            policy.on_source(net, 0, pkt)
            assert pkt.intermediate is None

    def test_sees_downstream_congestion(self, tables):
        # Congest edges *deeper* in the minimal path (1->3, 1->5, 1->9 ...):
        # UGAL-L at router 0 cannot see them, UGAL-G can.
        hot = set()
        for u in range(16):
            for v in tables.graph.neighbors(u):
                if u != 0 and tables.distance(int(v), 1) < tables.distance(u, 1):
                    hot.add((u, int(v)))
        # Hot everything pointing toward destination 1 except 0's own ports.
        policy_g = UGALGRouting(tables, seed=1)
        net = _FakeNet(tables, hot_edges=hot)
        decisions = []
        for _ in range(50):
            pkt = Packet(0, 0, 2, 4096, 0.0, 1)  # dst router 1, 1 hop away
            policy_g.on_source(net, 0, pkt)
            decisions.append(pkt.intermediate)
        # dst is adjacent: minimal path 0->1 has no hot edge, stays minimal.
        assert all(d is None for d in decisions)

        far_decisions = []
        for _ in range(50):
            pkt = Packet(0, 0, 0, 4096, 0.0, 1)
            pkt.dst_router = 1
            # force a longer evaluation from router 14 (distance 3 from 1):
            policy_g.on_source(net, 14, pkt)
            far_decisions.append(pkt.intermediate)
        # From a far router whose minimal paths ride hot edges, UGAL-G
        # frequently diverts (the random intermediate may dodge them).
        assert sum(1 for d in far_decisions if d is not None) > 0

    def test_end_to_end_delivery(self):
        topo = build_lps(3, 5)
        tables = RoutingTables(topo.graph)
        policy = make_routing("ugal-g", tables, seed=0)
        net = NetworkSimulator(topo, policy, SimConfig(concentration=2),
                               tables=tables)
        rng = np.random.default_rng(0)
        for _ in range(300):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d))
        stats = net.run()
        assert stats.summary()["delivered"] == stats.n_injected

    def test_vc_budget_matches_valiant(self, tables):
        assert make_routing("ugal-g", tables).required_vcs() == 2 * 4 + 1


class TestNewTrafficPatterns:
    def test_tornado(self):
        from repro.sim.traffic import TornadoTraffic

        pat = TornadoTraffic(8)
        rng = np.random.default_rng(0)
        assert pat.destination(0, rng) == 3
        assert pat.destination(5, rng) == 0
        dsts = {pat.destination(s, rng) for s in range(8)}
        assert len(dsts) == 8  # permutation

    def test_neighbor(self):
        from repro.sim.traffic import NearestNeighborTraffic

        pat = NearestNeighborTraffic(10)
        rng = np.random.default_rng(0)
        assert pat.destination(9, rng) == 0
        assert pat.destination(3, rng) == 4

    def test_factory_knows_them(self):
        from repro.sim.traffic import make_traffic

        assert make_traffic("tornado", 16).name == "tornado"
        assert make_traffic("neighbor", 16).name == "neighbor"
