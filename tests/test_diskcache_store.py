"""DiskCache correctness fixes + the multi-tenant ArtifactStore.

Covers the cache-side satellite fixes of the service PR:

* corrupted/truncated entries are unlinked on decode failure (so
  ``contains`` stops lying and the next ``put`` repairs the entry);
* orphaned ``*.tmp`` files from interrupted ``put``s are visible in
  ``stats()``, removed by ``clear()``, and age-reaped at store startup;
* the :class:`ArtifactStore` byte budget with LRU eviction (hits refresh
  recency) and persisted hit/miss/eviction metrics;
* a multi-process stress test: concurrent put/get/evict on one root must
  never produce a torn read or a stray tempfile.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import pytest

from repro.service.store import ArtifactStore, parse_budget
from repro.utils.diskcache import DiskCache


def _orphan_tmp(cache: DiskCache, age_s: float = 0.0, payload: bytes = b"partial") -> str:
    """Plant a fake interrupted-put tempfile under the cache root."""
    sub = cache.root / "ab"
    sub.mkdir(parents=True, exist_ok=True)
    path = sub / f"orphan-{age_s}.tmp"
    path.write_bytes(payload)
    if age_s:
        old = time.time() - age_s
        os.utime(path, (old, old))
    return str(path)


class TestCorruptEntries:
    def test_corrupt_entry_unlinked_and_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("k",), {"value": 1})
        path = cache._path(cache.key_hash(("k",)))
        path.write_bytes(b"not a pickle")
        assert cache.get(("k",), default="miss") == "miss"
        # The bad file is gone: contains() stops reporting a phantom hit
        # and future lookups don't re-pay the failed unpickle.
        assert not path.exists()
        assert not cache.contains(("k",))
        assert cache.corrupt_dropped == 1

    def test_truncated_entry_unlinked(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("k",), list(range(1000)))
        path = cache._path(cache.key_hash(("k",)))
        path.write_bytes(path.read_bytes()[:20])  # torn write
        assert cache.get(("k",)) is None
        assert not path.exists()

    def test_next_put_repairs(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("k",), "good")
        path = cache._path(cache.key_hash(("k",)))
        path.write_bytes(b"\x80garbage")
        assert cache.get(("k",)) is None
        cache.put(("k",), "repaired")
        assert cache.get(("k",)) == "repaired"

    def test_missing_file_is_plain_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get(("absent",), default=42) == 42
        assert cache.corrupt_dropped == 0


class TestTmpOrphans:
    def test_stats_counts_orphans(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("k",), 1)
        _orphan_tmp(cache)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["tmp_files"] == 1
        assert stats["tmp_bytes"] > 0

    def test_clear_removes_orphans(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(("k",), 1)
        _orphan_tmp(cache)
        assert cache.clear() == 2
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["tmp_files"] == 0

    def test_reap_tmp_age_guard(self, tmp_path):
        cache = DiskCache(tmp_path)
        _orphan_tmp(cache, age_s=7200.0)
        fresh = _orphan_tmp(cache, age_s=0.0)
        assert cache.reap_tmp(min_age_s=3600.0) == 1
        # A live writer's tempfile survives the reaper.
        assert os.path.exists(fresh)

    def test_store_reaps_stale_tmp_at_startup(self, tmp_path):
        seed = DiskCache(tmp_path)
        seed.put(("k",), 1)
        _orphan_tmp(seed, age_s=7200.0)
        store = ArtifactStore(tmp_path)
        assert store.reaped_tmp == 1
        stats = store.stats()
        assert stats["tmp_files"] == 0
        assert stats["total_reaped_tmp"] == 1
        assert store.get(("k",)) == 1  # entries untouched


class TestBudgetEviction:
    def test_budget_enforced_after_puts(self, tmp_path):
        store = ArtifactStore(tmp_path, budget_bytes=20_000)
        for i in range(12):
            store.put(("k", i), b"x" * 4096)
        stats = store.stats()
        assert stats["bytes"] <= 20_000
        assert stats["session_evictions"] > 0
        assert stats["entries"] < 12

    def test_lru_order_hits_refresh_recency(self, tmp_path):
        # ~4.2K per entry; budget fits three.
        store = ArtifactStore(tmp_path, budget_bytes=13_000)
        for name in ("a", "b", "c"):
            store.put((name,), b"x" * 4096)
            time.sleep(0.02)
        assert store.get(("a",)) is not None  # refresh a's recency
        time.sleep(0.02)
        store.put(("d",), b"x" * 4096)  # evicts the LRU entry: b
        assert not store.contains(("b",))
        for name in ("a", "c", "d"):
            assert store.contains((name,)), name

    def test_startup_eviction_on_existing_root(self, tmp_path):
        big = ArtifactStore(tmp_path)
        for i in range(10):
            big.put(("k", i), b"x" * 4096)
        shrunk = ArtifactStore(tmp_path, budget_bytes=10_000)
        assert shrunk.stats()["bytes"] <= 10_000

    def test_bad_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, budget_bytes=0)

    def test_parse_budget(self):
        assert parse_budget("500000") == 500_000
        assert parse_budget("64K") == 64 << 10
        assert parse_budget("256M") == 256 << 20
        assert parse_budget("2G") == 2 << 30
        with pytest.raises(ValueError):
            parse_budget("many")
        with pytest.raises(ValueError):
            parse_budget("-3M")


class TestMetrics:
    def test_flush_and_reload_totals(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(("k",), 1)
        assert store.get(("k",)) == 1
        assert store.get(("missing",)) is None
        store.flush_metrics()
        reopened = ArtifactStore(tmp_path)
        stats = reopened.stats()
        assert stats["total_hits"] == 1
        assert stats["total_misses"] == 1
        assert stats["session_hits"] == 0  # session counters are fresh
        assert stats["hit_rate"] == 0.5

    def test_metrics_file_not_an_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(("k",), 1)
        store.flush_metrics()
        assert store.stats()["entries"] == 1
        assert store.clear() == 1  # metrics sidecar is not an entry


# ---------------------------------------------------------------------------
# Multi-process stress: many writers, one root, a tight budget.
_N_KEYS = 17


def _expected(k: int) -> list[int]:
    return [k * j for j in range(800)]


def _stress_worker(root: str, budget: int, n_ops: int, errors) -> None:
    try:
        store = ArtifactStore(root, budget_bytes=budget)
        for i in range(n_ops):
            k = i % _N_KEYS
            value = store.get(("stress", k))
            # Atomic writes + corrupt-unlink mean a reader sees either
            # nothing (miss / evicted) or the complete, correct value —
            # never a torn read.
            if value is not None and value != _expected(k):
                errors.put(f"torn read for key {k}")
                return
            store.put(("stress", k), _expected(k))
    except BaseException as exc:  # noqa: BLE001 — report into the queue
        errors.put(f"{type(exc).__name__}: {exc}")


def test_multiprocess_stress_no_torn_reads(tmp_path):
    budget = 40_000  # far below 17 entries' footprint: constant eviction
    errors = multiprocessing.Queue()
    procs = [
        multiprocessing.Process(
            target=_stress_worker, args=(str(tmp_path), budget, 60, errors)
        )
        for _ in range(4)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    assert errors.empty(), errors.get()
    # The surviving population is consistent: within budget (modulo the
    # final concurrent put), no stranded tempfiles, every entry readable.
    store = ArtifactStore(tmp_path, budget_bytes=budget)
    stats = store.stats()
    assert stats["bytes"] <= budget
    assert stats["tmp_files"] == 0
    for path in store.root.glob("*/*.pkl"):
        with open(path, "rb") as fh:
            pickle.load(fh)  # every surviving file unpickles cleanly
    for k in range(_N_KEYS):
        value = store.get(("stress", k))
        assert value is None or value == _expected(k)
