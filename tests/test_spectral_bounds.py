"""Tests for the spectral bounds of Section II/IV."""

import math

import numpy as np
import pytest

from repro.graphs.generators import complete_graph, hypercube_graph, random_regular_graph
from repro.partition import bisection_bandwidth
from repro.spectral.bounds import (
    alon_boppana_bound,
    bisection_lower_bound,
    cheeger_bounds,
    expander_mixing_bound,
    lps_mu1_guarantee,
    lps_normalized_bisection_guarantee,
    normalized_bisection_lower_bound,
    ramanujan_bound,
    tanner_vertex_expansion_bound,
)
from repro.spectral.eigen import lambda_g, mu1


class TestRamanujanBound:
    def test_values(self):
        assert ramanujan_bound(4) == pytest.approx(2 * math.sqrt(3))
        assert ramanujan_bound(12) == pytest.approx(2 * math.sqrt(11))

    def test_alon_boppana_below_ramanujan(self):
        for k in (3, 8, 24):
            for diam in (3, 5, 10):
                assert alon_boppana_bound(k, diam) <= ramanujan_bound(k)

    def test_alon_boppana_monotone_in_diameter(self):
        vals = [alon_boppana_bound(10, d) for d in range(2, 12)]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))

    def test_alon_boppana_rejects_bad_diameter(self):
        with pytest.raises(ValueError):
            alon_boppana_bound(4, 0)


class TestCheeger:
    def test_ordering(self):
        g = random_regular_graph(80, 5, seed=1)
        lo, hi = cheeger_bounds(g)
        assert 0 < lo <= hi

    def test_complete_graph_edge_expansion(self):
        # K_n edge expansion = ceil(n/2) >= lower Cheeger bound = n/2 / ... .
        g = complete_graph(10)
        lo, hi = cheeger_bounds(g)
        # True h_E(K_10) = 5 (cut n/2 x n/2 has 25 edges / 5 vertices).
        assert lo <= 5.0 <= hi


class TestTannerAndMixing:
    def test_tanner_at_least_one(self):
        g = random_regular_graph(100, 6, seed=2)
        assert tanner_vertex_expansion_bound(g, 0.5) >= 1.0

    def test_tanner_monotone_in_fraction(self):
        g = random_regular_graph(100, 6, seed=2)
        b1 = tanner_vertex_expansion_bound(g, 0.1)
        b2 = tanner_vertex_expansion_bound(g, 0.5)
        assert b1 >= b2

    def test_tanner_invalid_fraction(self):
        g = complete_graph(6)
        with pytest.raises(ValueError):
            tanner_vertex_expansion_bound(g, 0.0)

    def test_mixing_bound_holds_empirically(self):
        # Check |e(S,T) - k|S||T|/n| <= bound on random subsets.
        g = random_regular_graph(80, 8, seed=3)
        k, n = 8, 80
        rng = np.random.default_rng(0)
        adj = g.adjacency().toarray()
        for _ in range(20):
            s = rng.choice(n, size=20, replace=False)
            t = rng.choice(n, size=30, replace=False)
            e_st = adj[np.ix_(s, t)].sum()
            dev = abs(e_st - k * len(s) * len(t) / n)
            assert dev <= expander_mixing_bound(g, len(s), len(t)) + 1e-9


class TestBisectionBounds:
    def test_fiedler_below_actual_cut(self):
        for seed in range(3):
            g = random_regular_graph(60, 6, seed=seed)
            lower = bisection_lower_bound(g)
            actual = bisection_bandwidth(g, repeats=3, seed=seed)
            assert lower <= actual + 1e-9

    def test_hypercube_exact_bisection(self):
        # Q_d bisection = 2^(d-1); Fiedler bound = mu1 k n/4 = (2/d) d 2^d/4.
        d = 4
        g = hypercube_graph(d)
        assert bisection_lower_bound(g) == pytest.approx(2 ** (d - 1), abs=1e-6)
        assert bisection_bandwidth(g, repeats=4) == 2 ** (d - 1)

    def test_normalized_equals_gap_over_2k(self):
        from repro.spectral.eigen import spectral_gap

        g = random_regular_graph(50, 4, seed=9)
        assert normalized_bisection_lower_bound(g) == pytest.approx(
            spectral_gap(g) / 8.0
        )


class TestLPSGuarantees:
    def test_guarantee_crossover_near_35(self):
        # Section IV d says k >= 36 beats SlimFly's asymptotic 1/3; the
        # exact algebra (k^2 - 36k + 36 > 0) gives k >= 35 — the paper is
        # conservative by one.  Pin the true crossover.
        assert 2 * lps_normalized_bisection_guarantee(35) > 2.0 / 3.0
        assert 2 * lps_normalized_bisection_guarantee(34) < 2.0 / 3.0

    def test_mu1_guarantee_exceeds_two_thirds_at_35(self):
        # Section IV c: LPS radix k >= 35 guarantees mu1 > 2/3.
        assert lps_mu1_guarantee(35) > 2.0 / 3.0
        assert lps_mu1_guarantee(34) < 2.0 / 3.0
