"""The saturation-congestion experiment: driver, registry, the inversion.

The experiment's reason to exist is one claim: under congestion realism
(finite buffers, lossy links) the routing ranking of an ideal network
does not survive — at 1-packet buffers adaptive spreading overtakes
minimal routing.  That inversion is pinned here at the registry's own
small-preset parameters, so it cannot silently evaporate into a table
where every ``ranking_inverted`` is False.
"""

import pytest

from repro.experiments.saturation_congestion import REGIMES, run
from repro.runner.registry import get_experiment
from repro.sim import capabilities


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")


def _mini(**overrides):
    kwargs = dict(
        scale="small",
        families=("SpectralFly",),
        routings=("minimal", "ugal"),
        regimes=((0, 0.0), (1, 0.0)),
        packets_per_rank=6,
        seed=0,
    )
    kwargs.update(overrides)
    return run(**kwargs)


class TestDriver:
    def test_rows_and_columns(self):
        res = _mini()
        assert len(res.rows) == 2  # 1 family x 2 regimes
        base, tight = res.rows
        assert base["buffers"] == "unbounded"
        assert tight["buffers"] == "1 pkt"
        # The baseline regime is the ranking reference by construction.
        assert base["ranking_inverted"] is False
        for row in res.rows:
            assert set(row["ranking"].split(">")) == {"minimal", "ugal"}
            assert row["best_routing"] == row["ranking"].split(">")[0]
            assert row["minimal_latency_ns"] > 0
            assert row["ugal_latency_ns"] > 0
        # Lossless regimes drop and retransmit nothing.
        assert all(r["dropped"] == 0 == r["retransmits"] for r in res.rows)
        assert all(r["min_delivered_fraction"] == 1.0 for r in res.rows)

    def test_deterministic_per_seed(self):
        assert _mini().rows == _mini().rows

    def test_lossy_regime_actually_drops_and_retransmits(self):
        res = _mini(regimes=((0, 0.0), (0, 0.08)), max_attempts=2)
        lossy = res.rows[1]
        assert lossy["dropped"] > 0
        assert lossy["retransmits"] > 0
        assert lossy["min_delivered_fraction"] < 1.0

    def test_small_preset_produces_a_ranking_inversion(self):
        # The acceptance claim: at the registered small-preset parameters
        # at least one finite-buffer cell ranks the routings differently
        # from the same family's unbounded baseline.  Run two of the four
        # families (the calibrated inverting ones) at the preset's exact
        # load/pattern/seed to keep the test fast.
        exp = get_experiment("saturation-congestion")
        params = exp.params("small")
        params["families"] = ("SpectralFly", "BundleFly")
        res = run(**params)
        inverted = [r for r in res.rows if r["ranking_inverted"]]
        assert inverted, "no cell's ranking differed from its baseline"
        # The inversion is the congestion story: it happens in the
        # finite-buffer regimes, not the unbounded ones.
        assert all(r["buffers"] != "unbounded" for r in inverted)
        # And it is the predicted direction: adaptive overtakes minimal
        # (minimal never *gains* rank under backpressure).
        assert any(r["best_routing"] == "ugal" for r in inverted)


class TestRegistryEntry:
    def test_registered_with_presets(self):
        exp = get_experiment("saturation-congestion")
        assert set(exp.presets) == {"small", "full"}
        assert "congestion" in exp.tags
        # Ranking/inversion are computed inside a family cell, so only
        # families may split.
        assert exp.cell_axes == ("families",)
        for preset in exp.presets:
            params = exp.params(preset)
            assert params["backend"] == "event"
            assert set(params["routings"]) >= {"minimal", "ugal"}

    def test_declares_the_congestion_features(self):
        exp = get_experiment("saturation-congestion")
        assert set(exp.features) == {
            capabilities.OPEN_LOOP,
            capabilities.FINITE_BUFFERS,
            capabilities.LOSSY_LINKS,
            capabilities.ADAPTIVE_ROUTING,  # the sweep includes ugal
        }
        # Both engines implement all four since the batched credit loop
        # (the sharded scale engine implements none of the last three).
        assert set(exp.supported_backends) == {"event", "batched"}

    def test_default_regimes_cover_the_grid(self):
        # Ideal baseline, each knob alone, both stacked — in that order
        # (the first regime is the ranking reference).
        assert REGIMES[0] == (0, 0.0)
        assert (1, 0.0) in REGIMES and (0, 0.05) in REGIMES
        assert (1, 0.05) in REGIMES
