"""Property tests pinning the batched traffic fast path.

Two contracts keep the event and batched engines injecting *identical*
traffic at equal seeds:

1. **Rank-for-rank draw equivalence.**  For every stochastic pattern that
   opts into the batched fast path by overriding ``destination_from_u``,
   mapping one pre-drawn uniform through ``destination_from_u`` must give
   the same destination as ``destination()`` fed a generator whose bounded
   draw realises that same uniform.  (The two code paths must agree on the
   *mapping* from raw draw to destination — the skip-self adjustment, the
   range — for every ``(n_ranks, src, u)``.)
2. **Predraw equals live firing.**  ``OpenLoopSource.predraw`` must emit
   exactly the (injection time, destination endpoint) sequence that
   ``start()`` + ``fire()`` produce against a live simulator, for every
   pattern kind (deterministic, fast-path stochastic, and legacy
   stochastic subclasses without ``destination_from_u``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.network import SimConfig
from repro.sim.traffic import (
    _PATTERNS,
    OpenLoopSource,
    TrafficPattern,
    UniformRandomTraffic,
    make_traffic,
)

#: Every registered stochastic pattern on the batched fast path (today:
#: uniform random; the parametrisation picks up future ones by itself).
FAST_PATH_PATTERNS = [
    cls
    for cls in _PATTERNS.values()
    if cls.stochastic
    and cls.destination_from_u is not TrafficPattern.destination_from_u
]


def test_fast_path_pattern_inventory():
    # The harness below must not silently become vacuous.
    assert UniformRandomTraffic in FAST_PATH_PATTERNS


class _UniformStub:
    """A Generator stand-in whose bounded draws realise given uniforms.

    ``integers(m)`` returns ``int(u * m)`` for the next pre-drawn uniform
    ``u`` — the integer the float fast path derives from the same draw —
    so feeding ``destination()`` this stub asks: do both code paths apply
    the same mapping from raw draw to destination?
    """

    def __init__(self, us):
        self._us = list(us)
        self._i = 0

    def integers(self, m):
        u = self._us[self._i]
        self._i += 1
        return int(u * int(m))


@pytest.mark.parametrize("cls", FAST_PATH_PATTERNS, ids=lambda c: c.name)
@given(
    n_ranks=st.integers(min_value=2, max_value=4096),
    src_frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    us=st.lists(
        st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        min_size=1,
        max_size=32,
    ),
)
@settings(max_examples=200, deadline=None)
def test_destination_from_u_matches_destination_rank_for_rank(
    cls, n_ranks, src_frac, us
):
    pattern = cls(n_ranks)
    src = int(src_frac * n_ranks)
    stub = _UniformStub(us)
    for u in us:
        via_u = pattern.destination_from_u(src, u)
        via_rng = pattern.destination(src, stub)
        assert via_u == via_rng, (n_ranks, src, u)
        # ... and both land in range, never on the source itself.
        assert 0 <= via_u < n_ranks
        assert via_u != src


@given(
    n_ranks=st.integers(min_value=2, max_value=1024),
    src_frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    u=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
@settings(max_examples=200, deadline=None)
def test_uniform_random_covers_every_destination(n_ranks, src_frac, u):
    # Surjectivity over the uniform: int(u * (n-1)) with the skip-self
    # shift reaches every rank except src as u sweeps [0, 1).
    pattern = UniformRandomTraffic(n_ranks)
    src = int(src_frac * n_ranks)
    dst = pattern.destination_from_u(src, u)
    assert 0 <= dst < n_ranks and dst != src
    if n_ranks <= 64:
        seen = {
            pattern.destination_from_u(src, k / (4 * n_ranks))
            for k in range(4 * n_ranks)
        }
        assert seen == set(range(n_ranks)) - {src}


# ---------------------------------------------------------------------------
# predraw == start()/fire(): the injection schedules of the two engines.
# ---------------------------------------------------------------------------
class _TwoHotspots(TrafficPattern):
    """Legacy-contract stochastic pattern (no destination_from_u)."""

    name = "two-hotspots"

    def destination(self, src, rng):  # noqa: ARG002
        return int(rng.integers(2))


class _RecordingNet:
    """Just enough of the NetworkSimulator surface to drive one source."""

    def __init__(self, config):
        self.config = config
        self.sent: list[tuple[float, int]] = []
        self._events: list = []
        self._seq = iter(range(10**9))

    def schedule_inject(self, t, source):
        self._events.append((t, source))

    def send(self, src_ep, dst_ep, size=None, tag=None, t=None):  # noqa: ARG002
        self.sent.append((t, dst_ep))

    def drive(self):
        """Fire scheduled injections in order until the source is done.

        ``start()`` goes through ``schedule_inject`` ((t, source) pairs);
        ``fire()`` pushes the simulator's flat ``(t, seq, kind, source)``
        event tuples straight onto ``_events`` — accept both shapes.
        """
        while self._events:
            self._events.sort(key=lambda ev: ev[0])
            ev = self._events.pop(0)
            ev[-1].fire(self, ev[0])


def _pattern_cases():
    return [
        ("random", lambda n: make_traffic("random", n)),  # fast path
        ("shuffle", lambda n: make_traffic("shuffle", n)),  # deterministic
        ("tornado", lambda n: make_traffic("tornado", n)),  # deterministic
        ("legacy-stochastic", lambda n: _TwoHotspots(n)),  # per-call rng
    ]


@pytest.mark.parametrize(
    "name,factory", _pattern_cases(), ids=lambda c: c if isinstance(c, str) else ""
)
@pytest.mark.parametrize("seed", [0, 3, 11])
def test_predraw_matches_live_firing(name, factory, seed):
    n_ranks = 16
    rank = 5
    k = 12
    config = SimConfig(concentration=2)
    r2e = np.arange(n_ranks, dtype=np.int64) * 3  # arbitrary placement

    def build():
        return OpenLoopSource(
            rank, int(r2e[rank]), factory(n_ranks), r2e, 0.4, k, seed=seed
        )

    t_pre, dst_pre = build().predraw(config)

    net = _RecordingNet(config)
    src = build()
    src.start(net)
    net.drive()

    assert len(net.sent) == k == len(t_pre)
    live_t = [t for t, _ in net.sent]
    live_dst = [d for _, d in net.sent]
    # Bit-identical times (same draws, same accumulation order) and
    # identical destinations, packet for packet.
    assert live_t == t_pre.tolist()
    assert live_dst == dst_pre.tolist()


def test_predraw_consumes_the_source_rng():
    # predraw replaces start(): it advances the same generator, so calling
    # it twice on one source must NOT replay the schedule (a second call
    # would silently desynchronise the engines).
    n_ranks = 8
    r2e = np.arange(n_ranks, dtype=np.int64)
    src = OpenLoopSource(
        1, 1, make_traffic("random", n_ranks), r2e, 0.4, 6, seed=42
    )
    config = SimConfig()
    t1, _ = src.predraw(config)
    t2, _ = src.predraw(config)
    assert t1.tolist() != t2.tolist()
