"""Tests for routing tables, policies, and VC deadlock avoidance."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import cycle_graph, hypercube_graph
from repro.routing import (
    MinimalRouting,
    RoutingTables,
    UGALRouting,
    ValiantRouting,
    build_channel_dependency_graph,
    is_acyclic,
    make_routing,
    required_virtual_channels,
)
from repro.sim.packet import Packet


@pytest.fixture(scope="module")
def q4_tables():
    return RoutingTables(hypercube_graph(4))


class TestRoutingTables:
    def test_distances(self, q4_tables):
        assert q4_tables.distance(0, 0) == 0
        assert q4_tables.distance(0, 0b1111) == 4
        assert q4_tables.diameter == 4

    def test_min_next_hops_decrease_distance(self, q4_tables):
        for u, d in [(0, 15), (3, 12), (7, 8)]:
            for v in q4_tables.min_next_hops(u, d):
                assert q4_tables.distance(int(v), d) == q4_tables.distance(u, d) - 1

    def test_path_diversity_counts(self, q4_tables):
        # From 0 to 15 in Q4 there are 4 minimal first hops.
        assert len(q4_tables.min_next_hops(0, 15)) == 4

    def test_port_lookup(self, q4_tables):
        g = hypercube_graph(4)
        for u in (0, 5, 15):
            for i, v in enumerate(g.neighbors(u)):
                assert q4_tables.port_of(u, int(v)) == i

    def test_port_lookup_missing(self, q4_tables):
        with pytest.raises(KeyError):
            q4_tables.port_of(0, 15)

    def test_disconnected_rejected(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        with pytest.raises(ValueError):
            RoutingTables(g)


def _mk_packet(dst_router):
    return Packet(0, 0, 0, 4096, 0.0, dst_router)


class TestMinimalRouting:
    def test_reaches_destination(self, q4_tables):
        policy = MinimalRouting(q4_tables, seed=0)
        pkt = _mk_packet(15)
        at = 0
        hops = 0
        while at != 15:
            at = policy.next_hop(None, at, pkt)
            hops += 1
            assert hops <= 4
        assert hops == 4

    def test_vc_budget(self, q4_tables):
        assert MinimalRouting(q4_tables).required_vcs() == 5


class TestValiantRouting:
    def test_visits_intermediate(self, q4_tables):
        policy = ValiantRouting(q4_tables, seed=1)
        pkt = _mk_packet(15)
        policy.on_source(None, 0, pkt)
        if pkt.intermediate is None:
            return  # degenerate draw; acceptable
        inter = pkt.intermediate
        at = 0
        visited = [0]
        while at != 15 and len(visited) < 20:
            at = policy.next_hop(None, at, pkt)
            visited.append(at)
        assert inter in visited
        assert at == 15

    def test_vc_budget(self, q4_tables):
        assert ValiantRouting(q4_tables).required_vcs() == 9

    def test_path_length_bounded(self, q4_tables):
        policy = ValiantRouting(q4_tables, seed=3)
        for dst in (1, 7, 15):
            pkt = _mk_packet(dst)
            policy.on_source(None, 0, pkt)
            at, hops = 0, 0
            while at != dst:
                at = policy.next_hop(None, at, pkt)
                hops += 1
                assert hops <= 2 * q4_tables.diameter


class _FakeNet:
    """Network stub exposing queue occupancies for UGAL decisions."""

    def __init__(self, tables, busy_ports=()):
        self.tables = tables
        self.busy = set(busy_ports)

    def output_queue_bytes(self, router, nxt):
        return 10_000_000 if (router, nxt) in self.busy else 0


class TestUGALRouting:
    def test_idle_network_goes_minimal(self, q4_tables):
        policy = UGALRouting(q4_tables, seed=0)
        net = _FakeNet(q4_tables)
        minimal = 0
        for i in range(50):
            pkt = _mk_packet(15)
            policy.on_source(net, 0, pkt)
            if pkt.intermediate is None:
                minimal += 1
        # Valiant path is always longer; with zero queues minimal must win.
        assert minimal == 50

    def test_congested_minimal_port_diverts(self, q4_tables):
        # Destination 1 has a single minimal port (0 -> 1); saturate it.
        # (0 -> 15 would not work: every port of 0 is minimal toward 15.)
        busy = {(0, 1)}
        policy = UGALRouting(q4_tables, seed=2)
        net = _FakeNet(q4_tables, busy_ports=busy)
        diverted = 0
        for _ in range(50):
            pkt = _mk_packet(1)
            policy.on_source(net, 0, pkt)
            if pkt.intermediate is not None:
                diverted += 1
        assert diverted > 25  # most random intermediates dodge the hot port

    def test_factory(self, q4_tables):
        for name, cls in [
            ("minimal", MinimalRouting),
            ("valiant", ValiantRouting),
            ("ugal", UGALRouting),
        ]:
            assert isinstance(make_routing(name, q4_tables), cls)
        with pytest.raises(ValueError):
            make_routing("magic", q4_tables)


class TestVirtualChannels:
    def test_required_counts(self):
        assert required_virtual_channels("minimal", 3) == 4
        assert required_virtual_channels("valiant", 3) == 7
        assert required_virtual_channels("ugal", 3) == 7
        with pytest.raises(ValueError):
            required_virtual_channels("x", 3)

    def test_hop_increment_cdg_acyclic(self):
        # All shortest paths on a 6-cycle with VC increment: acyclic.
        g = cycle_graph(6)
        tables = RoutingTables(g)
        paths = []
        for s in range(6):
            for d in range(6):
                if s == d:
                    continue
                # one shortest path per pair
                path = [s]
                at = s
                while at != d:
                    at = int(tables.min_next_hops(at, d)[0])
                    path.append(at)
                paths.append(path)
        chans, deps = build_channel_dependency_graph(g, paths, vc_increment=True)
        assert is_acyclic(len(chans), deps)

    def test_single_vc_cycle_deadlocks(self):
        # Clockwise 2-hop paths around a ring without VC increment: the CDG
        # closes into a directed cycle -> deadlock possible (Section V-A).
        g = cycle_graph(6)
        paths = [[i, (i + 1) % 6, (i + 2) % 6] for i in range(6)]
        chans, deps = build_channel_dependency_graph(g, paths, vc_increment=False)
        assert not is_acyclic(len(chans), deps)

    def test_vc_increment_fixes_ring_deadlock(self):
        # The identical paths become acyclic once VCs increment per hop.
        g = cycle_graph(6)
        paths = [[i, (i + 1) % 6, (i + 2) % 6] for i in range(6)]
        chans, deps = build_channel_dependency_graph(g, paths, vc_increment=True)
        assert is_acyclic(len(chans), deps)
