"""The collectives experiment family: driver, ranking, registry."""

import pytest

from repro.experiments.collectives import run
from repro.runner.registry import get_experiment


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")


def _mini(**overrides):
    kwargs = dict(
        scale="small",
        collectives=("allreduce",),
        algorithms=("ring",),
        n_nodes=(8,),
        total_bytes=1 << 12,
        seed=0,
    )
    kwargs.update(overrides)
    return run(**kwargs)


class TestDriver:
    def test_rows_and_columns(self):
        res = _mini()
        # One cell, all four families ranked within it.
        assert len(res.rows) == 4
        families = {r["topology"] for r in res.rows}
        assert len(families) == 4
        for row in res.rows:
            assert row["collective"] == "allreduce"
            assert row["algorithm"] == "ring"
            assert row["n_nodes"] == 8
            assert row["completion_us"] > 0
            assert 0 < row["chunk_mean_us"] <= row["chunk_p99_us"]
            assert row["chunk_p99_us"] <= row["completion_us"]
            assert row["speedup_vs_df"] > 0

    def test_ranking_contract(self):
        res = _mini()
        # Ranks are a permutation of 1..4, rank 1 is the fastest family,
        # and the DragonFly baseline row carries speedup exactly 1.
        ranked = sorted(res.rows, key=lambda r: r["rank"])
        assert [r["rank"] for r in ranked] == [1, 2, 3, 4]
        times = [r["completion_us"] for r in ranked]
        assert times == sorted(times)
        df = next(r for r in res.rows if r["topology"] == "DragonFly")
        assert df["speedup_vs_df"] == 1.0

    def test_deterministic_per_seed(self):
        assert _mini().rows == _mini().rows
        assert _mini().rows != _mini(seed=5).rows

    def test_batched_backend_agrees_on_cell_structure(self):
        ev = _mini()
        bt = _mini(backend="batched")
        # Same cells, same families; rankings may differ within tolerance
        # but every row's identity columns line up.
        key = ("collective", "algorithm", "n_nodes", "topology")
        assert [[r[k] for k in key] for r in ev.rows] == [
            [r[k] for k in key] for r in bt.rows
        ]

    def test_multi_cell_sweep_shape(self):
        res = _mini(algorithms=("ring", "binary-tree"), n_nodes=(8, 11))
        # 2 algorithms x 2 node counts x 4 families.
        assert len(res.rows) == 16
        assert {r["n_nodes"] for r in res.rows} == {8, 11}


class TestRegistryEntry:
    def test_registered_with_presets(self):
        exp = get_experiment("collectives")
        assert set(exp.presets) == {"small", "full"}
        assert "collectives" in exp.tags
        # Families must NOT be a cell axis: the ranking happens inside a
        # cell, across all families on identical seeds.
        assert exp.cell_axes == ("collectives", "algorithms", "n_nodes")

    def test_small_preset_cells(self):
        exp = get_experiment("collectives")
        spec = exp.spec("small")
        cells = exp.cells(spec)
        # collectives x algorithms x n_nodes from the small preset.
        assert len(cells) == 3 * 4 * 2

    def test_declares_both_backend_features(self):
        from repro.sim import capabilities as cap

        exp = get_experiment("collectives")
        assert cap.MOTIFS in exp.features
        assert cap.COLLECTIVES in exp.features
