"""Tests for the size-class catalog and feasibility sweeps."""

import pytest

from repro.topology.catalog import (
    SIM_CONFIGS,
    SIZE_CLASSES,
    build_size_class,
    feasible_sizes_per_radix,
)

# Table I: (routers, radix) per instance name.
TABLE1_SIZES = {
    1: {"LPS": (168, 12), "SlimFly": (98, 11), "BundleFly": (234, 11), "DragonFly": (156, 12)},
    2: {"LPS": (660, 24), "SlimFly": (578, 25), "BundleFly": (666, 23), "DragonFly": (600, 24)},
    3: {"LPS": (2448, 54), "SlimFly": (2738, 55), "BundleFly": (3104, 54), "DragonFly": (2862, 53)},
    4: {"LPS": (4896, 72), "SlimFly": (4418, 71), "BundleFly": (4384, 74), "DragonFly": (4830, 69)},
    5: {"LPS": (6840, 90), "SlimFly": (6962, 89), "BundleFly": (7850, 85), "DragonFly": (7310, 85)},
}


class TestSizeClasses:
    def test_five_classes(self):
        assert [s["class"] for s in SIZE_CLASSES] == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("cid", [1, 2])
    def test_built_sizes_match_table1(self, cid):
        topos = build_size_class(cid)
        for fam, (n, k) in TABLE1_SIZES[cid].items():
            assert topos[fam].n_routers == n, fam
            assert topos[fam].radix == k, fam

    def test_family_filter(self):
        topos = build_size_class(1, families=("LPS",))
        assert set(topos) == {"LPS"}


class TestSimConfigs:
    def test_scales_present(self):
        assert set(SIM_CONFIGS) == {"paper", "small"}

    def test_paper_scale_endpoints(self):
        # Section VI: ~8.7K endpoints.
        cfg = SIM_CONFIGS["paper"]
        spec = cfg["topologies"]["SpectralFly"]
        topo = spec["build"]()
        assert topo.n_routers == 1092  # LPS(23,13)
        assert topo.n_routers * spec["concentration"] == 8736
        bf = cfg["topologies"]["BundleFly"]
        assert bf["build"]().n_routers * bf["concentration"] == 8748

    def test_small_scale_fits_ranks(self):
        cfg = SIM_CONFIGS["small"]
        for name, spec in cfg["topologies"].items():
            topo = spec["build"]()
            assert topo.n_routers * spec["concentration"] >= cfg["n_ranks"], name


class TestFeasibleSizes:
    def test_families_present(self):
        feas = feasible_sizes_per_radix(max_vertices=2000, max_param=60)
        assert set(feas) == {"LPS", "SlimFly", "BundleFly", "DragonFly"}

    def test_lps_many_sizes_per_radix(self):
        feas = feasible_sizes_per_radix(max_vertices=10000, max_param=100)
        lps_radix4 = [n for k, n in feas["LPS"] if k == 4]
        assert len(lps_radix4) >= 3

    def test_slimfly_unique_size_per_radix(self):
        feas = feasible_sizes_per_radix(max_vertices=10000, max_param=100)
        radii = [k for k, _ in feas["SlimFly"]]
        assert len(radii) == len(set(radii))

    def test_dragonfly_quadratic(self):
        feas = feasible_sizes_per_radix(max_vertices=10000, max_param=100)
        for k, n in feas["DragonFly"]:
            assert n == k * (k + 1)
