"""Unit + determinism-pinning tests for the spectral design-space search.

The pinning class is the contract the golden corpus and the experiment
presets rely on: identical ``(seed, budget, schedule)`` must reproduce the
swap trajectory, candidate edge list, and fitness curve bit-identically,
on every platform and run.
"""

import numpy as np
import pytest

from repro.errors import BackendCapabilityError, ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.graphs.metrics import is_connected
from repro.search import (
    Annealing,
    HillClimb,
    edge_swap_search,
    make_schedule,
    replay_swaps,
    search_signing,
    two_lift,
)
from repro.spectral.eigen import lambda_g, spectral_gap
from repro.topology import (
    SEARCH_METHODS,
    SearchedTopology,
    Topology,
    build_jellyfish,
    build_paley,
    build_searched,
    lifted_topology,
    swap_searched_topology,
)


# -- schedules ---------------------------------------------------------------
class TestSchedules:
    def test_make_schedule_resolves_names(self):
        assert isinstance(make_schedule("hill"), HillClimb)
        assert isinstance(make_schedule("anneal"), Annealing)
        custom = make_schedule("anneal", t0=0.2, alpha=0.9)
        assert custom.t0 == 0.2 and custom.alpha == 0.9
        inst = Annealing(t0=0.1)
        assert make_schedule(inst) is inst

    def test_invalid_specs_rejected(self):
        with pytest.raises(ParameterError):
            make_schedule("tabu")
        with pytest.raises(ParameterError):
            make_schedule("hill", t0=0.5)
        with pytest.raises(ParameterError):
            Annealing(t0=-1.0)

    def test_hill_accepts_only_improvements(self):
        rng = np.random.default_rng(0)
        hill = HillClimb()
        assert hill.accept(0.1, 0, rng)
        assert not hill.accept(0.0, 0, rng)
        assert not hill.accept(-0.1, 0, rng)

    def test_annealing_cools(self):
        sched = Annealing(t0=0.5, alpha=0.9)
        assert sched.temperature(10) < sched.temperature(0)
        rng = np.random.default_rng(0)
        # A huge regression is effectively never accepted when cold.
        assert not any(
            sched.accept(-50.0, 1000, rng) for _ in range(100)
        )


# -- swap search -------------------------------------------------------------
class TestEdgeSwapSearch:
    def test_rejects_bad_inputs(self):
        g = random_regular_graph(12, 3, seed=0)
        with pytest.raises(ParameterError):
            edge_swap_search(g, budget=-1)
        with pytest.raises(ParameterError):
            edge_swap_search(g, budget=5, objective="girth")
        two_triangles = CSRGraph.from_edges(
            6, np.array([[0, 1], [1, 2], [2, 0], [3, 4], [4, 5], [5, 3]])
        )
        with pytest.raises(ParameterError):
            edge_swap_search(two_triangles, budget=5)

    def test_zero_budget_returns_seed(self):
        g = random_regular_graph(16, 3, seed=1)
        result = edge_swap_search(g, budget=0, seed=3)
        assert np.array_equal(result.graph.edge_array(), g.edge_array())
        assert result.best_fitness == result.seed_fitness
        assert result.accepted_swaps == []
        assert len(result.fitness_curve) == 0

    def test_trajectory_is_bit_deterministic(self):
        """Identical (seed, budget, schedule) → identical trajectory,
        candidate edge list, and fitness curve."""
        g = random_regular_graph(30, 4, seed=7)
        runs = [
            edge_swap_search(g, budget=120, seed=11, schedule="anneal")
            for _ in range(2)
        ]
        assert runs[0].accepted_swaps == runs[1].accepted_swaps
        assert np.array_equal(runs[0].fitness_curve, runs[1].fitness_curve)
        assert np.array_equal(
            runs[0].graph.edge_array(), runs[1].graph.edge_array()
        )
        assert runs[0].graph.content_hash() == runs[1].graph.content_hash()
        assert runs[0].counters == runs[1].counters

    def test_different_seed_different_trajectory(self):
        g = random_regular_graph(30, 4, seed=7)
        a = edge_swap_search(g, budget=120, seed=11)
        b = edge_swap_search(g, budget=120, seed=12)
        assert a.accepted_swaps != b.accepted_swaps

    def test_replay_reconstructs_accepted_states(self):
        g = random_regular_graph(24, 4, seed=2)
        result = edge_swap_search(g, budget=80, seed=5, schedule="hill")
        states = list(replay_swaps(g, result.accepted_swaps))
        assert len(states) == result.counters["accepted"]
        # Hill-climbing: the last accepted state IS the best state.
        if states:
            assert (
                states[-1].content_hash() == result.graph.content_hash()
            )

    def test_replay_rejects_corrupt_trajectory(self):
        g = cycle_graph(8)
        with pytest.raises(ParameterError):
            list(replay_swaps(g, [(0, 1, 0, 1)]))

    def test_curve_tracks_objective(self):
        g = random_regular_graph(20, 4, seed=4)
        result = edge_swap_search(g, budget=60, seed=9, objective="lambda")
        assert result.best_fitness == pytest.approx(
            -lambda_g(result.graph), abs=1e-9
        )
        assert len(result.fitness_curve) == 60

    def test_improves_jellyfish_seed(self):
        """The acceptance-criterion property at experiment-preset scale."""
        topo = build_jellyfish(44, 6, seed=3)
        result = edge_swap_search(topo.graph, budget=200, seed=1)
        assert result.best_fitness > result.seed_fitness
        assert spectral_gap(result.graph) > spectral_gap(topo.graph)


# -- signing search ----------------------------------------------------------
class TestSearchSigning:
    def test_deterministic(self):
        g = random_regular_graph(14, 4, seed=0)
        a = search_signing(g, seed=3, restarts=2, passes=2)
        b = search_signing(g, seed=3, restarts=2, passes=2)
        assert np.array_equal(a.signs, b.signs)
        assert a.score == b.score
        assert a.graph.content_hash() == b.graph.content_hash()
        assert np.array_equal(a.restart_scores, b.restart_scores)

    def test_score_matches_reported_signing(self):
        from repro.search.lift import signed_adjacency_extreme

        g = random_regular_graph(12, 3, seed=5)
        res = search_signing(g, seed=1, restarts=2, passes=1)
        assert res.score == pytest.approx(
            signed_adjacency_extreme(g, res.signs), abs=1e-12
        )
        assert res.graph.n == 2 * g.n

    def test_rejects_bad_parameters(self):
        g = cycle_graph(6)
        with pytest.raises(ParameterError):
            search_signing(g, restarts=0)
        with pytest.raises(ParameterError):
            search_signing(g, passes=0)
        with pytest.raises(ParameterError):
            two_lift(g, np.array([1, -1]))
        with pytest.raises(ParameterError):
            two_lift(g, np.zeros(g.num_edges))


# -- topology wrappers + catalog registration --------------------------------
class TestSearchedTopology:
    def test_swap_builder_roundtrip(self):
        topo = swap_searched_topology(26, 4, budget=50, seed=2)
        assert isinstance(topo, SearchedTopology)
        assert isinstance(topo, Topology)
        assert topo.family == "Searched"
        assert topo.n_routers == 26 and topo.radix == 4
        assert is_connected(topo.graph)
        assert topo.provenance["best_fitness"] >= topo.provenance["seed_fitness"]
        # The params dict is a complete recipe: rebuilding reproduces the
        # graph bit-identically.
        p = dict(topo.params)
        again = swap_searched_topology(
            p["n"], p["radix"], budget=p["budget"], seed=p["seed"],
            schedule=p["schedule"], objective=p["objective"],
        )
        assert again.graph.content_hash() == topo.graph.content_hash()

    def test_swap_builder_validates_seed_topology(self):
        wrong = build_jellyfish(20, 4, seed=0)
        with pytest.raises(ParameterError):
            swap_searched_topology(26, 4, budget=10, seed_topology=wrong)

    def test_lift_builder(self):
        base = build_paley(13)
        topo = lifted_topology(base, seed=4, restarts=2, passes=1)
        assert topo.n_routers == 26
        assert topo.radix == base.radix
        assert topo.params["method"] == "two-lift"
        assert topo.provenance["signed_extreme"] == pytest.approx(
            min(topo.provenance["restart_scores"])
        )

    def test_catalog_build_searched(self):
        assert SEARCH_METHODS == ("edge-swap", "two-lift")
        swap = build_searched("edge-swap", n_routers=26, radix=4,
                              budget=40, seed=1)
        assert isinstance(swap, SearchedTopology)
        lift = build_searched("two-lift", base=("SF", {"q": 5}), seed=1,
                              restarts=1, passes=1)
        assert lift.n_routers == 100  # 2 * SlimFly(5)'s 50 routers
        assert lift.params["base_params"]["q"] == 5
        with pytest.raises(ParameterError):
            build_searched("genetic")
        with pytest.raises(ParameterError):
            build_searched("two-lift", base=42)

    def test_searched_flows_through_sim_engines(self):
        """A searched candidate runs unchanged on both engines."""
        from repro.experiments.common import run_synthetic_sim

        topo = swap_searched_topology(26, 4, budget=40, seed=6)
        out = {}
        for backend in ("event", "batched"):
            out[backend] = run_synthetic_sim(
                topo, "minimal", "random", 0.4, concentration=2,
                n_ranks=16, packets_per_rank=4, seed=0, backend=backend,
            )
        assert out["event"]["delivered"] == out["batched"]["delivered"] > 0


# -- capability-matrix routing validation ------------------------------------
class TestRoutingFeatureValidation:
    def test_ugal_on_sharded_fails_at_assembly_time(self):
        from repro.experiments.common import build_synthetic_sim

        topo = build_jellyfish(26, 4, seed=0)
        with pytest.raises(BackendCapabilityError) as err:
            build_synthetic_sim(
                topo, "ugal", "random", 0.4, concentration=2,
                n_ranks=16, packets_per_rank=4, backend="sharded",
            )
        assert "adaptive-routing" in str(err.value)

    def test_require_routing_matrix(self):
        from repro.sim import capabilities

        for backend in capabilities.BACKENDS:
            capabilities.require_routing(backend, "minimal")
            capabilities.require_routing(backend, "valiant")
        capabilities.require_routing("event", "ugal")
        capabilities.require_routing("batched", "ugal-g")
        with pytest.raises(BackendCapabilityError):
            capabilities.require_routing("sharded", "ugal")
        # Unknown policies pass through: the routing factory owns that error.
        capabilities.require_routing("sharded", "no-such-policy")


# -- the registry experiment -------------------------------------------------
class TestSpectralSearchExperiment:
    def test_small_preset_beats_seed_and_is_deterministic(self):
        """Acceptance pinning: at small-preset parameters, at least one
        searched candidate strictly beats its Jellyfish seed on spectral
        gap at equal n and radix — and re-runs reproduce identical rows."""
        from repro.experiments.spectral_search import run

        kwargs = dict(
            seed_families=("jellyfish",), radixes=(6,), budgets=(200,),
            n_routers=44, restarts=1, passes=1, n_ranks=32,
            packets_per_rank=4,
        )
        result = run(**kwargs)
        swap_rows = [r for r in result.rows if r["role"] == "swap"]
        seed_rows = {r["budget"]: r for r in result.rows
                     if r["role"] == "seed"}
        assert any(
            r["beats_seed"] is True
            and r["spectral_gap"] > seed_rows[r["budget"]]["spectral_gap"]
            for r in swap_rows
        )
        assert result.rows == run(**kwargs).rows

    def test_infeasible_combo_yields_skip_row(self):
        from repro.experiments.spectral_search import run

        result = run(seed_families=("paley",), radixes=(4,), budgets=(10,))
        assert [r["role"] for r in result.rows] == ["skipped"]

    def test_unknown_family_rejected(self):
        from repro.experiments.spectral_search import run

        with pytest.raises(ParameterError):
            run(seed_families=("mobius",))

    def test_lift_rows_double_routers(self):
        from repro.experiments.spectral_search import run

        result = run(
            seed_families=("paley",), radixes=(6,), budgets=(10,),
            restarts=1, passes=1, n_ranks=16, packets_per_rank=3,
        )
        by_role = {r["role"]: r for r in result.rows}
        assert by_role["lift"]["routers"] == 2 * by_role["seed"]["routers"]
        assert by_role["jellyfish-2n-ref"]["routers"] == \
            by_role["lift"]["routers"]

    def test_registry_entry(self):
        from repro.runner.registry import get_experiment

        exp = get_experiment("spectral-search")
        assert exp.cell_axes == ("seed_families", "radixes", "budgets")
        spec = exp.spec("small")
        assert len(exp.cells(spec)) == 8
        assert "event" in exp.supported_backends
        assert "batched" in exp.supported_backends
