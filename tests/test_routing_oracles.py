"""The on-demand routing oracles against the dense reference.

Three contracts are pinned here:

1. **Bit-identity** — for every topology family at seed sizes, the
   family-appropriate oracle (:class:`CayleyOracle` on vertex-transitive
   algebraic constructions, :class:`LandmarkOracle` on the random/graph
   families) answers ``distance`` / ``min_next_hops`` *bit-identically* to
   :class:`DenseOracle`, and oracle-backed :class:`RoutingTables` answer
   ``port_of`` / ``directed_edge_id`` identically to dense tables.  The
   engines were threaded for RNG-parity, so bit-identity here is what makes
   whole oracle-backed simulation runs bit-identical to dense runs
   (``tests/test_sim_differential.py::TestOracleDifferential``).
2. **Laziness** — constructing tables for ``port_of``-style use never
   materialises the O(n^2) distance matrix (the regression this PR fixes),
   and the lazy paths refuse to silently densify (they raise instead).
3. **Memory ceiling** (gating) — routing a 12k-router SpectralFly through
   the Cayley oracle allocates a small fraction of what the dense matrix
   alone would need.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.routing.oracles import (
    CAYLEY_FAMILIES,
    CayleyOracle,
    DenseOracle,
    LandmarkOracle,
    oracle_for,
    translator_for,
)
from repro.routing.tables import FaultMask, RoutingTables
from repro.topology import (
    build_bundlefly,
    build_canonical_dragonfly,
    build_jellyfish,
    build_lps,
    build_mms,
    build_paley,
    build_skywalk,
    build_slimfly,
    build_xpander,
)

#: Every topology family at seed size, with the oracle kind the auto
#: selection would use above the dense threshold.
FAMILY_TOPOS = {
    "LPS": (lambda: build_lps(3, 5), "cayley"),
    "Paley": (lambda: build_paley(29), "cayley"),
    "MMS": (lambda: build_mms(5), "cayley"),
    "SlimFly": (lambda: build_slimfly(5), "cayley"),
    "DragonFly": (lambda: build_canonical_dragonfly(6), "landmark"),
    "Jellyfish": (lambda: build_jellyfish(60, 5, seed=3), "landmark"),
    "Xpander": (lambda: build_xpander(6, 60, seed=3), "landmark"),
    "BundleFly": (lambda: build_bundlefly(5, 3), "landmark"),
    "SkyWalk": (lambda: build_skywalk(50, 6, seed=3), "landmark"),
}


@pytest.fixture(scope="module", params=sorted(FAMILY_TOPOS))
def family_case(request):
    build, kind = FAMILY_TOPOS[request.param]
    topo = build()
    return topo, kind


def _sample_pairs(n, rng, k=400):
    us = rng.integers(0, n, size=k)
    ds = rng.integers(0, n, size=k)
    return us, ds


class TestOracleEquivalence:
    def test_distance_and_min_next_hops_bit_identical(self, family_case):
        topo, kind = family_case
        dense = DenseOracle(topo.graph, use_cache=False)
        lazy = oracle_for(topo, kind=kind, use_cache=False)
        assert lazy.kind == kind
        rng = np.random.default_rng(7)
        us, ds = _sample_pairs(topo.n_routers, rng)
        got = lazy.distance_batch(us, ds)
        want = dense.distance_batch(us, ds)
        np.testing.assert_array_equal(got, want)
        for u, d in zip(us[:64].tolist(), ds[:64].tolist()):
            assert lazy.distance(u, d) == dense.distance(u, d)
            if u != d:
                np.testing.assert_array_equal(
                    lazy.min_next_hops(u, d), dense.min_next_hops(u, d)
                )

    def test_pick_minimal_matches_dense_for_equal_draws(self, family_case):
        topo, kind = family_case
        degs = topo.graph.degrees()
        if degs.min() != degs.max():
            pytest.skip("pick_minimal fast path needs a regular graph")
        dense = DenseOracle(topo.graph, use_cache=False)
        lazy = oracle_for(topo, kind=kind, use_cache=False)
        rng = np.random.default_rng(11)
        us, ds = _sample_pairs(topo.n_routers, rng, k=300)
        keep = us != ds
        us, ds = us[keep], ds[keep]
        r = rng.random(len(us))
        np.testing.assert_array_equal(
            lazy.pick_minimal(us, ds, r), dense.pick_minimal(us, ds, r)
        )

    def test_diameter_matches_dense(self, family_case):
        topo, kind = family_case
        dense = DenseOracle(topo.graph, use_cache=False)
        lazy = oracle_for(topo, kind=kind, use_cache=False)
        assert lazy.diameter == dense.diameter

    def test_lazy_tables_answer_ports_like_dense_tables(self, family_case):
        topo, kind = family_case
        g = topo.graph
        dense_t = RoutingTables(g, use_cache=False)
        lazy_t = RoutingTables(
            g, use_cache=False, oracle=oracle_for(topo, kind=kind, use_cache=False)
        )
        assert lazy_t.is_lazy
        rng = np.random.default_rng(5)
        heads = np.repeat(np.arange(g.n), np.diff(g.indptr))
        pick = rng.integers(0, len(g.indices), size=200)
        for u, v in zip(heads[pick].tolist(), g.indices[pick].tolist()):
            assert lazy_t.port_of(u, v) == dense_t.port_of(u, v)
            assert lazy_t.directed_edge_id(u, v) == dense_t.directed_edge_id(
                u, v
            )
        us, ds = _sample_pairs(g.n, rng, k=64)
        for u, d in zip(us.tolist(), ds.tolist()):
            assert lazy_t.distance(u, d) == dense_t.distance(u, d)
            if u != d:
                np.testing.assert_array_equal(
                    np.asarray(lazy_t.min_next_hops(u, d)),
                    np.asarray(dense_t.min_next_hops(u, d)),
                )

    def test_fault_mask_candidates_match_dense(self, family_case):
        topo, kind = family_case
        g = topo.graph
        dense_m = FaultMask(RoutingTables(g, use_cache=False))
        lazy_m = FaultMask(
            RoutingTables(
                g,
                use_cache=False,
                oracle=oracle_for(topo, kind=kind, use_cache=False),
            )
        )
        a, b = int(g.neighbors(0)[0]), 0
        for m in (dense_m, lazy_m):
            m.fail_link(b, a)
        rng = np.random.default_rng(3)
        us, ds = _sample_pairs(g.n, rng, k=120)
        for u, d in zip(us.tolist(), ds.tolist()):
            if u == d:
                continue
            assert lazy_m.live_min_candidates(u, d) == list(
                dense_m.live_min_candidates(u, d)
            )


class TestLandmarkBounds:
    @pytest.mark.parametrize(
        "family", [f for f, (_, k) in FAMILY_TOPOS.items() if k == "landmark"]
    )
    def test_upper_bound_is_admissible(self, family):
        topo = FAMILY_TOPOS[family][0]()
        lm = LandmarkOracle(topo.graph, landmarks=8)
        dense = DenseOracle(topo.graph, use_cache=False)
        rng = np.random.default_rng(13)
        us, ds = _sample_pairs(topo.n_routers, rng, k=300)
        ub = lm.upper_bound(us, ds)
        exact = dense.distance_batch(us, ds)
        assert np.all(ub >= exact)
        # Triangle-equality at the landmarks themselves: exact there.
        lid = lm.landmarks[0]
        zs = rng.integers(0, topo.n_routers, size=50)
        np.testing.assert_array_equal(
            lm.upper_bound(np.full(50, lid), zs),
            dense.distance_batch(np.full(50, lid), zs),
        )


class TestLaziness:
    def test_port_only_use_never_builds_the_dense_matrix(self):
        """The PR 8 regression fix: RoutingTables construction + port_of /
        directed_edge_id / next-hop-free use allocates no O(n^2) state."""
        topo = build_lps(5, 23)  # 12,144 routers: dense matrix is ~295 MB
        g = topo.graph
        dense_bytes = g.n * g.n * 2
        tracemalloc.start()
        tables = RoutingTables(g, use_cache=False)
        for v in g.neighbors(0).tolist():
            tables.port_of(0, v)
            tables.directed_edge_id(0, v)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert tables._dist is None, "port-only use materialised the matrix"
        # The connectivity BFS and edge maps are O(E): a few MB here,
        # nowhere near the 295 MB int16 matrix.
        assert peak < dense_bytes / 8, (
            f"port-only peak {peak/1e6:.1f} MB vs dense {dense_bytes/1e6:.1f} MB"
        )

    def test_lazy_tables_refuse_to_densify(self):
        topo = build_lps(3, 5)
        tables = RoutingTables(
            topo.graph, use_cache=False, oracle=oracle_for(topo, kind="cayley")
        )
        with pytest.raises(RuntimeError, match="oracle-backed"):
            tables.dist
        with pytest.raises(RuntimeError, match="oracle-backed"):
            tables.build_fast_path()
        # ...but oracle-served queries and diameter still work.
        assert tables.diameter > 0
        assert tables.distance(0, 1) >= 1

    def test_auto_kind_prefers_dense_below_threshold(self):
        topo = build_lps(3, 5)
        assert oracle_for(topo, kind="auto", use_cache=False).kind == "dense"
        assert (
            oracle_for(
                topo, kind="auto", dense_threshold=8, use_cache=False
            ).kind
            == "cayley"
        )

    def test_auto_kind_uses_landmarks_off_the_cayley_families(self):
        topo = build_jellyfish(40, 4, seed=1)
        assert topo.family not in CAYLEY_FAMILIES
        assert (
            oracle_for(
                topo, kind="auto", dense_threshold=8, use_cache=False
            ).kind
            == "landmark"
        )


class TestMemoryCeiling:
    def test_cayley_oracle_routes_12k_routers_in_megabytes(self):
        """Gating scale assertion: LPS(5,23) (12,144 routers) routed via
        the Cayley oracle stays far below the ~295 MB its dense int16
        distance matrix alone would cost."""
        topo = build_lps(5, 23)
        n = topo.n_routers
        dense_bytes = n * n * 2
        tracemalloc.start()
        oracle = CayleyOracle(topo.graph, translator_for(topo), self_check=False)
        rng = np.random.default_rng(2)
        us, ds = _sample_pairs(n, rng, k=2000)
        oracle.distance_batch(us, ds)
        keep = us != ds
        oracle.pick_minimal(us[keep], ds[keep], rng.random(int(keep.sum())))
        for u, d in zip(us[:32].tolist(), ds[:32].tolist()):
            if u != d:
                oracle.min_next_hops(u, d)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < dense_bytes / 4, (
            f"oracle peak {peak/1e6:.1f} MB vs dense {dense_bytes/1e6:.1f} MB"
        )
