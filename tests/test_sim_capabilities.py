"""The backend capability matrix, pinned over its full product.

Every ``(backend, feature)`` pair must either *run* (a real, minimal
exercise of the feature on that engine) or raise the **single canonical
error type**, :class:`~repro.errors.BackendCapabilityError` — never a raw
``TypeError``/``AttributeError`` from deep inside an engine, and never a
silent fallback.  Parametrizing over the full product means a future
backend (or a feature added to one engine only) cannot silently regress a
combination: add it to the matrix and this file fails until every cell is
either implemented or properly refused.
"""

from __future__ import annotations

import pytest

from repro.errors import BackendCapabilityError, SimulationError
from repro.experiments.common import build_synthetic_sim
from repro.routing import RoutingTables, make_routing
from repro.sim import (
    BatchedSimulator,
    NetworkSimulator,
    ShardedSimulator,
    SimConfig,
)
from repro.sim import capabilities as cap
from repro.sim.faults import FaultSchedule
from repro.topology import build_lps
from repro.workloads import (
    CollectiveMotif,
    Sweep3DMotif,
    run_collective,
    run_motif,
)


@pytest.fixture(scope="module")
def parts():
    topo = build_lps(3, 5)
    tables = RoutingTables(topo.graph)
    return topo, tables


def _make_engine(parts, backend):
    topo, tables = parts
    cls = {
        "event": NetworkSimulator,
        "batched": BatchedSimulator,
        "sharded": ShardedSimulator,
    }[backend]
    return cls(topo, make_routing("minimal", tables, seed=0),
               SimConfig(concentration=2), tables=tables)


# One minimal, *real* exercise per feature.  Each either completes or
# raises; anything else (wrong error type, silent no-op) fails the test.
def _exercise_open_loop(parts, backend):
    topo, _ = parts
    net = build_synthetic_sim(
        topo, "minimal", "random", 0.5, concentration=2, n_ranks=8,
        packets_per_rank=2, seed=0, backend=backend,
    )
    stats = net.run()
    assert len(stats.latencies_ns) == stats.n_injected > 0


def _exercise_motifs(parts, backend):
    topo, tables = parts
    out = run_motif(
        topo, make_routing("minimal", tables, seed=0),
        Sweep3DMotif((3, 3), sweeps=1), SimConfig(concentration=2),
        placement_seed=1, backend=backend,
    )
    assert out["delivered_fraction"] == 1.0


def _exercise_collectives(parts, backend):
    topo, tables = parts
    out = run_collective(
        topo, make_routing("minimal", tables, seed=0),
        CollectiveMotif("allreduce", "ring", 4, total_bytes=1024),
        SimConfig(concentration=2), placement_seed=1, backend=backend,
    )
    assert out["ownership_complete"] is True
    assert out["chunk_done_max_ns"] == out["makespan_ns"]


def _exercise_faults(parts, backend):
    topo, _ = parts
    schedule = FaultSchedule.random_link_faults(
        topo.graph, 0.05, t_fail=2000.0, seed=1, t_recover=9000.0
    )
    net = build_synthetic_sim(
        topo, "minimal", "random", 0.5, concentration=2, n_ranks=16,
        packets_per_rank=4, seed=0, faults=schedule, backend=backend,
    )
    stats = net.run()
    assert len(stats.epochs) == len(schedule)


def _exercise_finite_buffers(parts, backend):
    topo, _ = parts
    net = build_synthetic_sim(
        topo, "minimal", "random", 0.6, concentration=2, n_ranks=16,
        packets_per_rank=4, seed=0,
        config=SimConfig(concentration=2, finite_buffers=True,
                         buffer_bytes=2 * 4096),
        backend=backend,
    )
    stats = net.run()
    # Credits must flow: everything delivers and every buffer drains.
    assert len(stats.latencies_ns) == stats.n_injected > 0
    assert net._buf_used is not None and net._buf_used.sum() == 0


def _exercise_lossy_links(parts, backend):
    from repro.sim import ChannelConfig

    topo, _ = parts
    channel = ChannelConfig(loss_prob=0.15, jitter_ns=10.0, max_attempts=2,
                            backoff_ns=20.0, seed=7)
    net = build_synthetic_sim(
        topo, "minimal", "random", 0.5, concentration=2, n_ranks=16,
        packets_per_rank=4, seed=0,
        config=SimConfig(concentration=2, channel=channel),
        backend=backend,
    )
    stats = net.run()
    # The channel must actually bite: losses itemized by cause, the rest
    # delivered, nothing silently vanishing.
    assert stats.n_retransmits > 0
    assert stats.drops.get(channel.drop_cause, 0) == stats.n_dropped
    assert len(stats.latencies_ns) + stats.n_dropped == stats.n_injected


def _add_source(net):
    """One tiny open-loop source (works on both engines)."""
    from repro.sim.traffic import OpenLoopSource, make_traffic

    import numpy as np

    r2e = np.arange(4, dtype=np.int64)
    net.add_open_loop_source(
        OpenLoopSource(0, 0, make_traffic("neighbor", 4), r2e, 0.5, 2,
                       seed=3)
    )


def _exercise_pause_resume(parts, backend):
    net = _make_engine(parts, backend)
    _add_source(net)
    net.run(until=1.0)
    # The pause must actually pause: nothing can have delivered by t=1ns.
    assert not net.stats.latencies_ns
    net.run()
    assert net.stats.latencies_ns


def _exercise_delivery_callbacks(parts, backend):
    net = _make_engine(parts, backend)
    seen = []
    net.on_delivery = lambda pkt, t: seen.append(t)
    _add_source(net)
    net.run()
    # The callback must actually fire, once per delivery.
    assert len(seen) == len(net.stats.latencies_ns) > 0


def _exercise_adhoc_send(parts, backend):
    net = _make_engine(parts, backend)
    net.send(0, 5)
    stats = net.run()
    # The send must actually traverse the network and deliver.
    assert stats.n_injected == 1
    assert len(stats.latencies_ns) == 1


def _exercise_adaptive_routing(parts, backend):
    topo, _ = parts
    net = build_synthetic_sim(
        topo, "ugal", "random", 0.5, concentration=2, n_ranks=8,
        packets_per_rank=2, seed=0, backend=backend,
    )
    stats = net.run()
    assert len(stats.latencies_ns) == stats.n_injected > 0


_EXERCISES = {
    cap.OPEN_LOOP: _exercise_open_loop,
    cap.MOTIFS: _exercise_motifs,
    cap.COLLECTIVES: _exercise_collectives,
    cap.FAULTS: _exercise_faults,
    cap.FINITE_BUFFERS: _exercise_finite_buffers,
    cap.LOSSY_LINKS: _exercise_lossy_links,
    cap.PAUSE_RESUME: _exercise_pause_resume,
    cap.DELIVERY_CALLBACKS: _exercise_delivery_callbacks,
    cap.ADHOC_SEND: _exercise_adhoc_send,
    cap.ADAPTIVE_ROUTING: _exercise_adaptive_routing,
}


class TestMatrixDeclaration:
    def test_matrix_covers_exactly_the_declared_backends(self):
        assert tuple(cap.CAPABILITIES) == cap.BACKENDS

    def test_every_capability_is_a_declared_feature(self):
        for backend, feats in cap.CAPABILITIES.items():
            assert feats <= set(cap.FEATURES), backend

    def test_event_is_the_reference_and_supports_everything(self):
        assert cap.CAPABILITIES["event"] == frozenset(cap.FEATURES)

    def test_every_feature_has_an_exercise(self):
        # The functional product test below only means something if every
        # declared feature really is exercised.
        assert set(_EXERCISES) == set(cap.FEATURES)

    @pytest.mark.parametrize("feature", cap.FEATURES)
    def test_supported_backends_consistent_with_supports(self, feature):
        good = cap.supported_backends(feature)
        assert good == tuple(
            b for b in cap.BACKENDS if cap.supports(b, feature)
        )
        # Someone must support every feature (the event engine at least).
        assert "event" in good

    def test_unknown_backend_is_rejected_everywhere(self):
        with pytest.raises(BackendCapabilityError, match="unknown"):
            cap.check_backend("threaded")
        with pytest.raises(BackendCapabilityError, match="unknown"):
            cap.require("threaded", cap.OPEN_LOOP)
        with pytest.raises(BackendCapabilityError, match="unknown"):
            SimConfig(backend="threaded")

    def test_require_names_the_supported_backends(self):
        with pytest.raises(BackendCapabilityError) as exc:
            cap.require("batched", cap.PAUSE_RESUME)
        assert "event" in str(exc.value)
        assert exc.value.backend == "batched"
        assert exc.value.feature == cap.PAUSE_RESUME
        assert exc.value.supported_backends == ("event",)

    def test_canonical_error_is_both_simulation_and_parameter_error(self):
        # Existing call sites catch either; the canonical type serves both.
        from repro.errors import ParameterError

        assert issubclass(BackendCapabilityError, SimulationError)
        assert issubclass(BackendCapabilityError, ParameterError)


class TestFullProductRunsOrRaisesCanonically:
    @pytest.mark.parametrize("feature", cap.FEATURES)
    @pytest.mark.parametrize("backend", cap.BACKENDS)
    def test_pair_runs_or_raises_the_canonical_error(
        self, parts, backend, feature
    ):
        exercise = _EXERCISES[feature]
        if cap.supports(backend, feature):
            exercise(parts, backend)  # must genuinely run
        else:
            with pytest.raises(BackendCapabilityError) as exc:
                exercise(parts, backend)
            # The message tells the user which backend would work.
            assert any(
                b in str(exc.value) for b in cap.supported_backends(feature)
            )
