"""Tests for the multilevel partitioner (METIS stand-in)."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)
from repro.partition import (
    WeightedGraph,
    bisect,
    bisection_bandwidth,
    kernighan_lin_bisection,
)
from repro.partition.coarsen import contract, heavy_edge_matching
from repro.partition.refine import fm_refine, rebalance


def _balanced(labels):
    c0 = int((labels == 0).sum())
    c1 = int((labels == 1).sum())
    return abs(c0 - c1) <= 1


class TestWeightedGraph:
    def test_from_csr_unit_weights(self):
        g = cycle_graph(6)
        wg = WeightedGraph.from_csr(g)
        assert wg.total_vweight() == 6
        assert wg.eweights.sum() == 2 * 6

    def test_cut_value(self):
        g = cycle_graph(6)
        wg = WeightedGraph.from_csr(g)
        labels = np.array([0, 0, 0, 1, 1, 1], dtype=np.int8)
        assert wg.cut_value(labels) == 2


class TestCoarsening:
    def test_matching_is_valid(self):
        g = random_regular_graph(50, 4, seed=1)
        wg = WeightedGraph.from_csr(g)
        match = heavy_edge_matching(wg, np.random.default_rng(0))
        for v in range(50):
            assert match[match[v]] == v  # involution

    def test_contract_preserves_total_weight(self):
        g = random_regular_graph(40, 4, seed=2)
        wg = WeightedGraph.from_csr(g)
        match = heavy_edge_matching(wg, np.random.default_rng(0))
        coarse, mapping = contract(wg, match)
        assert coarse.total_vweight() == 40
        assert coarse.n < 40
        assert mapping.max() == coarse.n - 1

    def test_contract_preserves_cut(self):
        # Any coarse bisection lifts to a fine bisection of the same cut.
        g = hypercube_graph(4)
        wg = WeightedGraph.from_csr(g)
        match = heavy_edge_matching(wg, np.random.default_rng(3))
        coarse, mapping = contract(wg, match)
        rng = np.random.default_rng(1)
        clabels = (rng.random(coarse.n) < 0.5).astype(np.int8)
        assert coarse.cut_value(clabels) == wg.cut_value(clabels[mapping])


class TestRefinement:
    def test_fm_never_worsens(self):
        g = random_regular_graph(60, 4, seed=4)
        wg = WeightedGraph.from_csr(g)
        rng = np.random.default_rng(0)
        labels = (rng.random(60) < 0.5).astype(np.int8)
        before = wg.cut_value(labels)
        _, after = fm_refine(wg, labels)
        assert after <= before

    def test_rebalance_restores_balance(self):
        g = random_regular_graph(40, 4, seed=5)
        wg = WeightedGraph.from_csr(g)
        labels = np.zeros(40, dtype=np.int8)
        labels[:5] = 1  # badly unbalanced
        out = rebalance(wg, labels)
        assert _balanced(out)


class TestBisect:
    def test_cycle_optimal(self):
        labels, cut = bisect(cycle_graph(20), seed=0)
        assert cut == 2
        assert _balanced(labels)

    def test_hypercube_optimal(self):
        for d in (3, 4, 5):
            _, cut = bisect(hypercube_graph(d), seed=0)
            assert cut == 2 ** (d - 1)

    def test_two_cliques_bridge(self):
        # Two K_8s joined by one edge: optimal bisection cuts only it.
        edges = []
        for base in (0, 8):
            for i in range(8):
                for j in range(i + 1, 8):
                    edges.append((base + i, base + j))
        edges.append((0, 8))
        g = CSRGraph.from_edges(16, np.array(edges))
        labels, cut = bisect(g, seed=1)
        assert cut == 1
        assert _balanced(labels)

    def test_labels_binary(self):
        labels, _ = bisect(torus_graph((4, 4)), seed=2)
        assert set(np.unique(labels).tolist()) <= {0, 1}

    def test_odd_vertex_count(self):
        g = cycle_graph(21)
        labels, cut = bisect(g, seed=3)
        assert abs(int((labels == 0).sum()) - int((labels == 1).sum())) <= 1


class TestBisectionBandwidth:
    def test_returns_min_over_repeats(self):
        g = hypercube_graph(5)
        assert bisection_bandwidth(g, repeats=4, seed=0) == 16

    def test_complete_graph(self):
        # K_8 balanced cut = 4 * 4 = 16 whatever the split.
        assert bisection_bandwidth(complete_graph(8), repeats=2) == 16

    def test_beats_or_ties_kl(self):
        g = random_regular_graph(80, 6, seed=7)
        ml = bisection_bandwidth(g, repeats=4, seed=0)
        _, kl = kernighan_lin_bisection(g, seed=0)
        assert ml <= kl + 2  # multilevel should not lose badly to flat KL


class TestKernighanLin:
    def test_balanced_output(self):
        g = random_regular_graph(60, 4, seed=8)
        labels, cut = kernighan_lin_bisection(g, seed=1)
        assert _balanced(labels)
        assert cut >= 1

    def test_improves_over_random(self):
        g = hypercube_graph(5)
        rng = np.random.default_rng(0)
        random_labels = np.zeros(32, dtype=np.int8)
        random_labels[rng.permutation(32)[:16]] = 1
        from repro.partition.weighted import WeightedGraph as WG

        random_cut = WG.from_csr(g).cut_value(random_labels)
        _, kl_cut = kernighan_lin_bisection(g, seed=0)
        assert kl_cut <= random_cut
