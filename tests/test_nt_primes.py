"""Tests for repro.nt.primes."""

import numpy as np
import pytest

from repro.nt.primes import (
    is_prime,
    is_prime_power,
    next_prime,
    prime_power_decomposition,
    primes_below,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 49, 91, 121):
            assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)

    def test_carmichael_numbers(self):
        # Fermat pseudoprimes that fool weak tests.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_prime(n)

    def test_large_primes(self):
        assert is_prime(104729)  # 10000th prime
        assert is_prime(2**31 - 1)  # Mersenne
        assert not is_prime(2**32 + 1)  # F5 = 641 * 6700417

    def test_agrees_with_sieve(self):
        sieve = set(primes_below(2000).tolist())
        for n in range(2000):
            assert is_prime(n) == (n in sieve)


class TestPrimesBelow:
    def test_empty(self):
        assert len(primes_below(2)) == 0
        assert len(primes_below(0)) == 0

    def test_counts(self):
        assert len(primes_below(100)) == 25
        assert len(primes_below(1000)) == 168

    def test_first_values(self):
        assert primes_below(12).tolist() == [2, 3, 5, 7, 11]


class TestNextPrime:
    def test_basic(self):
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(13) == 17
        assert next_prime(89) == 97

    def test_from_composite(self):
        assert next_prime(90) == 97
        assert next_prime(0) == 2

    def test_strictly_greater(self):
        assert next_prime(7) == 11  # not 7 itself


class TestPrimePowers:
    def test_primes_are_prime_powers(self):
        for p in (2, 3, 5, 97):
            assert prime_power_decomposition(p) == (p, 1)

    def test_proper_powers(self):
        assert prime_power_decomposition(4) == (2, 2)
        assert prime_power_decomposition(8) == (2, 3)
        assert prime_power_decomposition(9) == (3, 2)
        assert prime_power_decomposition(27) == (3, 3)
        assert prime_power_decomposition(125) == (5, 3)
        assert prime_power_decomposition(1024) == (2, 10)

    def test_non_prime_powers(self):
        for n in (1, 6, 12, 36, 100, 0, -8):
            assert prime_power_decomposition(n) is None

    def test_is_prime_power(self):
        assert is_prime_power(27)
        assert not is_prime_power(28)
