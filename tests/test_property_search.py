"""Property-based tests (hypothesis) for the design-space search moves.

The search subsystem's correctness rests on structural invariants, not on
any particular trajectory: double-edge swaps must preserve the degree
sequence and edge count and never disconnect an accepted state, and
2-lifts must realise the Marcus–Spielman–Srivastava spectrum
decomposition exactly.  These properties are checked over randomly drawn
regular graphs, budgets, seeds, and signings.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import complete_graph, random_regular_graph
from repro.graphs.metrics import is_connected
from repro.search.lift import search_signing, signed_adjacency, two_lift
from repro.search.swap import edge_swap_search, replay_swaps


@st.composite
def regular_graphs(draw, max_n=36):
    """A connected random regular graph: (n, k) with n*k even, k >= 3."""
    k = draw(st.integers(min_value=3, max_value=6))
    # Keep n comfortably above k: the configuration-model repair loop is
    # only guaranteed to converge quickly for sparse-ish instances.
    n = draw(st.integers(min_value=2 * k + 2, max_value=max_n + 2 * k))
    if (n * k) % 2:
        n += 1
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_regular_graph(n, k, seed=seed)


# -- double-edge swaps -------------------------------------------------------
class TestSwapInvariants:
    @given(regular_graphs(), st.integers(0, 60),
           st.integers(0, 2**31 - 1), st.sampled_from(["hill", "anneal"]))
    @settings(max_examples=30, deadline=None)
    def test_degree_and_edges_preserved_connectivity_kept(
        self, g, budget, seed, schedule
    ):
        """Every accepted state is k-regular, same edge count, connected."""
        result = edge_swap_search(
            g, budget=budget, seed=seed, schedule=schedule
        )
        degs = g.degrees()
        for state in replay_swaps(g, result.accepted_swaps):
            assert np.array_equal(state.degrees(), degs)
            assert state.num_edges == g.num_edges
            assert is_connected(state)
        # The returned best graph obeys the same invariants.
        assert np.array_equal(result.graph.degrees(), degs)
        assert result.graph.num_edges == g.num_edges
        assert is_connected(result.graph)

    @given(regular_graphs(), st.integers(1, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_best_never_worse_than_seed(self, g, budget, seed):
        result = edge_swap_search(g, budget=budget, seed=seed)
        assert result.best_fitness >= result.seed_fitness
        assert result.improvement >= 0.0

    @given(regular_graphs(), st.integers(1, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_hill_climb_curve_is_monotone(self, g, budget, seed):
        """Hill-climbing accepts only improvements: the curve never drops."""
        result = edge_swap_search(g, budget=budget, seed=seed, schedule="hill")
        assert np.all(np.diff(result.fitness_curve) >= 0.0)


# -- 2-lifts -----------------------------------------------------------------
@st.composite
def graph_and_signs(draw):
    g = draw(regular_graphs(max_n=20))
    bits = draw(
        st.lists(st.booleans(), min_size=g.num_edges, max_size=g.num_edges)
    )
    signs = np.where(np.array(bits), 1, -1)
    return g, signs


class TestLiftInvariants:
    @given(graph_and_signs())
    @settings(max_examples=30, deadline=None)
    def test_doubles_vertices_preserves_degree(self, g_signs):
        g, signs = g_signs
        lifted = two_lift(g, signs)
        assert lifted.n == 2 * g.n
        assert lifted.num_edges == 2 * g.num_edges
        assert np.array_equal(
            lifted.degrees(), np.concatenate([g.degrees(), g.degrees()])
        )

    @given(graph_and_signs())
    @settings(max_examples=25, deadline=None)
    def test_spectrum_is_base_union_signed(self, g_signs):
        """eig(lift) = eig(A) ∪ eig(A_s) — the MSS interlacing identity."""
        g, signs = g_signs
        lifted = two_lift(g, signs)
        lift_spec = np.sort(np.linalg.eigvalsh(lifted.adjacency().toarray()))
        base_spec = np.linalg.eigvalsh(g.adjacency().toarray())
        signed_spec = np.linalg.eigvalsh(signed_adjacency(g, signs).toarray())
        expect = np.sort(np.concatenate([base_spec, signed_spec]))
        assert np.allclose(lift_spec, expect, atol=1e-8)

    @given(regular_graphs(max_n=20))
    @settings(max_examples=20, deadline=None)
    def test_all_plus_signing_is_two_disjoint_copies(self, g):
        lifted = two_lift(g, np.ones(g.num_edges))
        have = {tuple(e) for e in lifted.edge_array()}
        want = set()
        for u, v in g.edge_array():
            want.add((int(u), int(v)))
            want.add((int(u) + g.n, int(v) + g.n))
        assert have == want
        assert not is_connected(lifted)

    @given(st.integers(4, 8), st.integers(0, 2**31 - 1),
           st.integers(1, 3), st.integers(1, 2))
    @settings(max_examples=10, deadline=None)
    def test_signing_search_beats_trivial_signing(self, n, seed, restarts, passes):
        """The searched signing's score is within the trivial bound k."""
        g = complete_graph(n)
        res = search_signing(g, seed=seed, restarts=restarts, passes=passes)
        # The all-(+1) signing scores exactly k (A_s = A); any search
        # result must do strictly better on K_n, whose signed spectra
        # are well below k for balanced signings.
        assert res.score < g.degree()
        assert res.signs.shape == (g.num_edges,)
        assert is_connected(res.graph) or res.score == pytest.approx(
            g.degree()
        )
