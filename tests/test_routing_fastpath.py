"""The routing fast path: flat next-hop tables, edge ids, batched RNG.

The fast path (``RoutingTables.build_fast_path``) must be *set-identical*
to the reference numpy implementation (``min_next_hops``) for every
(router, destination) pair — these tests pin that across one topology per
family plus the generator graphs, and pin the O(1) edge-id lookup to the
CSR-position semantics the simulator's port arrays index by.
"""

import numpy as np
import pytest

from repro.errors import ConstructionError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import cycle_graph, hypercube_graph
from repro.routing import RoutingTables, make_routing
from repro.topology import (
    build_bundlefly,
    build_canonical_dragonfly,
    build_lps,
    build_slimfly,
)

# One member per topology family (plus structured generator graphs).
FAMILY_GRAPHS = {
    "lps": lambda: build_lps(3, 5).graph,  # 120 routers
    "slimfly": lambda: build_slimfly(5).graph,
    "dragonfly": lambda: build_canonical_dragonfly(6).graph,
    "bundlefly": lambda: build_bundlefly(5, 3).graph,
    "hypercube": lambda: hypercube_graph(4),
    "cycle": lambda: cycle_graph(9),
}


class TestNextHopTableParity:
    @pytest.mark.parametrize("family", sorted(FAMILY_GRAPHS))
    def test_set_identical_to_min_next_hops(self, family):
        g = FAMILY_GRAPHS[family]()
        tables = RoutingTables(g, use_cache=False)
        tables.build_fast_path()
        for u in range(g.n):
            for d in range(g.n):
                ref = tables.min_next_hops(u, d)
                fast = tables.table_next_hops(u, d)
                assert set(map(int, fast)) == set(map(int, ref)), (
                    f"{family}: mismatch at ({u}, {d})"
                )
                # Same order too: both follow the sorted neighbour row.
                assert list(map(int, fast)) == list(map(int, ref))

    def test_empty_cell_at_destination(self):
        tables = RoutingTables(hypercube_graph(3), use_cache=False)
        assert len(tables.table_next_hops(5, 5)) == 0

    def test_dist_flat_matches_matrix(self):
        g = FAMILY_GRAPHS["lps"]()
        tables = RoutingTables(g, use_cache=False)
        tables.build_fast_path()
        n = g.n
        for u, d in [(0, 0), (0, 1), (3, 77), (n - 1, 0)]:
            assert tables.dist_flat[u * n + d] == tables.distance(u, d)


class TestEdgeIndex:
    def test_matches_csr_positions(self):
        g = FAMILY_GRAPHS["lps"]()
        tables = RoutingTables(g, use_cache=False)
        for u in range(g.n):
            base = int(g.indptr[u])
            for i, v in enumerate(g.neighbors(u)):
                assert tables.directed_edge_id(u, int(v)) == base + i
                assert tables.port_of(u, int(v)) == i

    def test_missing_edge_raises(self):
        tables = RoutingTables(hypercube_graph(4), use_cache=False)
        with pytest.raises(KeyError):
            tables.directed_edge_id(0, 15)
        with pytest.raises(KeyError):
            tables.port_of(0, 15)


class TestUnsortedCSRRejected:
    def test_direct_unsorted_rows_raise(self):
        # Vertex 0 with neighbours (2, 1): unsorted row.
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([2, 1, 0, 0])
        with pytest.raises(ConstructionError, match="not sorted"):
            CSRGraph(3, indptr, indices)

    def test_from_edges_canonicalizes_any_order(self):
        # from_edges sorts regardless of input edge order.
        edges = np.array([[2, 0], [0, 1], [2, 1]])
        g = CSRGraph.from_edges(3, edges[::-1])
        for v in range(3):
            row = g.neighbors(v)
            assert list(row) == sorted(row)
        RoutingTables(g, use_cache=False)  # and the tables accept it

    def test_descending_pair_across_row_boundary_ok(self):
        # Row boundaries may legitimately "decrease" (end of one sorted row
        # to the start of the next); only within-row order is validated.
        g = CSRGraph.from_edges(4, np.array([[0, 3], [1, 2], [2, 3]]))
        assert g.has_edge(0, 3)


class TestNumpyBackedTables:
    def test_large_topology_fallback_matches_lists(self, monkeypatch):
        # Force the numpy-backed path (as used past LIST_CELLS_MAX) and pin
        # it behaviourally identical to the list-backed one, including the
        # int16 dist_flat reads in UGAL's byte-weighted cost products
        # (int16 would overflow at >32K queued bytes without int()).
        import repro.routing.tables as tables_mod
        from repro.sim import NetworkSimulator, SimConfig

        g = FAMILY_GRAPHS["lps"]()

        def run_sim(tables):
            topo = build_lps(3, 5)
            net = NetworkSimulator(
                topo, make_routing("ugal", tables, seed=0),
                SimConfig(concentration=2), tables=tables,
            )
            for src in range(0, 100):  # hotspot: big queues at router 0
                net.send(src + 40, 0)
            return net.run()

        list_tables = RoutingTables(g, use_cache=False)
        list_stats = run_sim(list_tables)
        assert type(list_tables.next_hop_table()[0]) is list

        monkeypatch.setattr(tables_mod, "LIST_CELLS_MAX", 0)
        np_tables = RoutingTables(g, use_cache=False)
        np_stats = run_sim(np_tables)
        assert type(np_tables.next_hop_table()[0]) is np.ndarray
        assert np_stats.latencies_ns == list_stats.latencies_ns
        assert np_stats.hops == list_stats.hops
        assert np_stats.valiant_choices == list_stats.valiant_choices


class TestBatchedRNG:
    def test_rand01_range_and_determinism(self):
        tables = RoutingTables(hypercube_graph(4), use_cache=False)
        a = make_routing("minimal", tables, seed=42)
        b = make_routing("minimal", tables, seed=42)
        draws_a = [a._rand01() for _ in range(20_000)]  # > one refill block
        draws_b = [b._rand01() for _ in range(20_000)]
        assert draws_a == draws_b
        assert all(0.0 <= x < 1.0 for x in draws_a)

    def test_random_minimal_covers_all_candidates(self):
        # Q4: 4 minimal first hops from 0 toward 15; all must be drawable.
        tables = RoutingTables(hypercube_graph(4), use_cache=False)
        policy = make_routing("minimal", tables, seed=7)
        seen = {policy._random_minimal(0, 15) for _ in range(500)}
        assert seen == set(map(int, tables.min_next_hops(0, 15)))

    def test_random_router_in_range(self):
        tables = RoutingTables(hypercube_graph(4), use_cache=False)
        policy = make_routing("valiant", tables, seed=3)
        draws = {policy._random_router() for _ in range(2000)}
        assert min(draws) >= 0 and max(draws) < 16
        assert len(draws) == 16  # every router reachable
