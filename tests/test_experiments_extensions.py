"""Tests for the saturation and inter-job contention experiments."""

import pytest

from repro.experiments import contention, saturation
from repro.experiments.saturation import find_knee


class TestFindKnee:
    def test_basic(self):
        series = [(0.1, 100.0), (0.3, 150.0), (0.5, 400.0), (0.7, 900.0)]
        assert find_knee(series, 2.0) == 0.5

    def test_never_saturates(self):
        series = [(0.1, 100.0), (0.9, 150.0)]
        assert find_knee(series, 2.0) is None

    def test_empty(self):
        assert find_knee([], 2.0) is None

    def test_immediate(self):
        # Base latency is compared against itself: factor > 1 never fires
        # on the first point.
        series = [(0.1, 100.0), (0.2, 500.0)]
        assert find_knee(series, 1.5) == 0.2


class TestSaturationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return saturation.run(loads=(0.1, 0.5, 0.9), packets_per_rank=5)

    def test_all_topologies(self, result):
        names = {r["topology"] for r in result.rows}
        assert names == {"SpectralFly", "DragonFly", "SlimFly", "BundleFly"}

    def test_latency_grows_with_load(self, result):
        for r in result.rows:
            series = [int(x) for x in r["latency_series"].split("/")]
            assert series[-1] >= series[0]

    def test_spectralfly_base_latency_sane(self, result):
        row = next(r for r in result.rows if r["topology"] == "SpectralFly")
        # Shuffle on SpectralFly at 10% load: ~2 hops worth of microseconds.
        assert 500 < row["base_latency_ns"] < 10_000

    def test_dragonfly_worst_base(self, result):
        by = {r["topology"]: r["base_latency_ns"] for r in result.rows}
        assert by["DragonFly"] > by["SpectralFly"]


class TestContentionExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return contention.run(packets_per_rank=5)

    def test_rows_and_fields(self, result):
        assert len(result.rows) == 4
        for r in result.rows:
            assert r["slowdown"] > 0
            assert r["job_a_ranks"] >= 4

    def test_discrepancy_prediction(self, result):
        # The Section II claim: SpectralFly's interference slowdown at or
        # below the strongly group-structured DragonFly.
        by = {r["topology"]: r["slowdown"] for r in result.rows}
        assert by["SpectralFly"] <= by["DragonFly"] + 0.05
