"""Pin the paper's published numbers (Table I, Section IV claims).

These tests are the ground truth of the reproduction: diameter, average
distance, girth and mu1 for the Table I instances we can afford to build in
the test suite (classes 1-2 plus spot checks), and the analytic claims of
Sections II-IV.
"""

import math

import numpy as np
import pytest

from repro.graphs.metrics import average_distance, diameter, girth, is_bipartite
from repro.spectral import is_ramanujan, lambda_g, mu1, ramanujan_bound
from repro.topology import build_lps


class TestTable1Class1:
    def test_lps_11_7(self, lps_11_7):
        g = lps_11_7.graph
        assert lps_11_7.n_routers == 168
        assert lps_11_7.radix == 12
        assert diameter(g) == 3
        assert average_distance(g) == pytest.approx(2.39, abs=0.005)
        assert girth(g, assume_vertex_transitive=True) == 3
        assert mu1(g) == pytest.approx(0.50, abs=0.005)

    def test_sf_7(self, sf_7):
        g = sf_7.graph
        assert (sf_7.n_routers, sf_7.radix) == (98, 11)
        assert diameter(g) == 2
        assert average_distance(g) == pytest.approx(1.89, abs=0.005)
        assert girth(g, assume_vertex_transitive=True) == 3
        # Paper: 0.62 — the magnitude convention picks up the negative MMS
        # eigenvalue -(1 + sqrt(2q + ...))/..., matching exactly.
        assert mu1(g) == pytest.approx(0.62, abs=0.005)

    def test_bf_13_3(self, bf_13_3):
        g = bf_13_3.graph
        assert (bf_13_3.n_routers, bf_13_3.radix) == (234, 11)
        assert diameter(g) == 3
        assert average_distance(g) == pytest.approx(2.56, abs=0.005)
        assert mu1(g) == pytest.approx(0.27, abs=0.005)

    def test_df_12(self, df_12):
        g = df_12.graph
        assert (df_12.n_routers, df_12.radix) == (156, 12)
        assert diameter(g) == 3
        assert average_distance(g) == pytest.approx(2.70, abs=0.005)
        assert mu1(g) == pytest.approx(0.08, abs=0.005)


class TestTable1Class2:
    def test_lps_23_11(self, lps_23_11):
        g = lps_23_11.graph
        assert lps_23_11.n_routers == 660
        assert lps_23_11.radix == 24
        assert diameter(g) == 3
        assert average_distance(g) == pytest.approx(2.35, abs=0.005)
        assert mu1(g) == pytest.approx(0.65, abs=0.015)

    def test_sf_17(self, sf_17):
        g = sf_17.graph
        assert (sf_17.n_routers, sf_17.radix) == (578, 25)
        assert diameter(g) == 2
        assert average_distance(g) == pytest.approx(1.96, abs=0.005)


class TestLargerSpotChecks:
    """One larger instance to confirm the girth-4 regime of Table I."""

    @pytest.mark.slow
    def test_lps_53_17(self):
        t = build_lps(53, 17)
        g = t.graph
        assert t.n_routers == 2448
        assert t.radix == 54
        assert diameter(g, sample=1) == 3  # vertex-transitive: exact
        assert girth(g, assume_vertex_transitive=True) == 3
        assert mu1(g) == pytest.approx(0.74, abs=0.01)
        assert is_ramanujan(g)

    @pytest.mark.slow
    def test_lps_71_17_girth4(self):
        t = build_lps(71, 17)
        g = t.graph
        assert t.n_routers == 4896
        assert is_bipartite(g)  # legendre(71,17) = -1 -> PGL
        assert girth(g, assume_vertex_transitive=True) == 4
        assert diameter(g, sample=1) == 4


class TestSectionIVClaims:
    def test_mu1_lower_bound_for_ramanujan(self, lps_11_7, lps_23_11):
        # mu1 >= (k - 2 sqrt(k-1))/k for Ramanujan graphs.
        for t in (lps_11_7, lps_23_11):
            k = t.radix
            assert mu1(t.graph) >= (k - 2 * math.sqrt(k - 1)) / k - 1e-9

    def test_lambda_at_most_ramanujan_bound(self, lps_11_7, lps_23_11):
        for t in (lps_11_7, lps_23_11):
            assert lambda_g(t.graph) <= ramanujan_bound(t.radix) + 1e-6

    def test_sf_mu1_approx_two_thirds(self, sf_17):
        # Section IV c: SlimFly's mu1 ~ 2/3 (so any LPS with radix >= 35
        # must beat it).
        assert abs(mu1(sf_17.graph) - 2.0 / 3.0) < 0.04

    def test_lps_beats_slimfly_bisection_class2(self, lps_23_11, sf_17):
        # Fig 4 (lower right): LPS normalized bisection > SlimFly's.
        from repro.partition import bisection_bandwidth

        lps_cut = bisection_bandwidth(lps_23_11.graph, repeats=3, seed=0)
        sf_cut = bisection_bandwidth(sf_17.graph, repeats=3, seed=0)
        lps_norm = lps_cut / (660 * 24 / 2)
        sf_norm = sf_cut / (578 * 25 / 2)
        assert lps_norm > sf_norm

    def test_dragonfly_mu1_decays(self, df_12):
        from repro.topology import build_canonical_dragonfly

        df24 = build_canonical_dragonfly(24)
        assert mu1(df24.graph) < mu1(df_12.graph)


class TestSimulatedInstances:
    """Section VI parameter sanity (construction only; sims run in benches)."""

    @pytest.mark.slow
    def test_lps_23_13(self):
        t = build_lps(23, 13)
        assert t.n_routers == 1092
        assert t.radix == 24
        assert t.endpoints(8) == 8736  # ~8.7K endpoints
