"""Tests for the Ember-style motifs and the DAG runner."""

import numpy as np
import pytest

from repro.routing import RoutingTables, make_routing
from repro.sim import SimConfig
from repro.topology import build_lps
from repro.workloads import (
    FFTMotif,
    Halo3D26Motif,
    Message,
    Sweep3DMotif,
    run_motif,
)
from repro.workloads.halo3d import default_halo_grid


def _dag_is_acyclic(messages):
    indeg = {m.mid: len(m.deps) for m in messages}
    dependents = {}
    for m in messages:
        for d in m.deps:
            dependents.setdefault(d, []).append(m.mid)
    stack = [m.mid for m in messages if not m.deps]
    seen = 0
    while stack:
        v = stack.pop()
        seen += 1
        for w in dependents.get(v, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                stack.append(w)
    return seen == len(messages)


class TestHalo3D:
    def test_message_count(self):
        m = Halo3D26Motif((4, 4, 4), iterations=1).generate()
        assert len(m) == 64 * 26

    def test_iterations_scale(self):
        one = Halo3D26Motif((4, 4, 4), iterations=1).generate()
        two = Halo3D26Motif((4, 4, 4), iterations=2).generate()
        assert len(two) == 2 * len(one)

    def test_neighbour_classes_sized(self):
        motif = Halo3D26Motif((4, 4, 4), iterations=1, block=8, cell_bytes=8)
        sizes = sorted({m.size for m in motif.generate()})
        assert sizes == [8, 64, 512]  # corner, edge, face

    def test_size_multiplicities(self):
        motif = Halo3D26Motif((4, 4, 4), iterations=1, block=8, cell_bytes=8)
        msgs = motif.generate()
        per_rank = {}
        for m in msgs:
            per_rank.setdefault(m.src_rank, []).append(m.size)
        for sizes in per_rank.values():
            assert sizes.count(512) == 6  # faces
            assert sizes.count(64) == 12  # edges
            assert sizes.count(8) == 8  # corners

    def test_second_iteration_depends_on_first(self):
        msgs = Halo3D26Motif((3, 3, 3), iterations=2).generate()
        later = [m for m in msgs if m.deps]
        assert len(later) == 27 * 26  # all of iteration 2
        assert all(len(m.deps) == 26 for m in later)

    def test_dag_acyclic(self):
        assert _dag_is_acyclic(Halo3D26Motif((3, 3, 3), iterations=3).generate())

    def test_default_grid_factorisation(self):
        assert default_halo_grid(64) == (4, 4, 4)
        assert np.prod(default_halo_grid(512)) == 512
        assert np.prod(default_halo_grid(96)) == 96


class TestSweep3D:
    def test_message_count_one_sweep(self):
        # Each rank sends east and south when in range: 2*p*(p-1) messages.
        msgs = Sweep3DMotif((4, 4), sweeps=1).generate()
        assert len(msgs) == 2 * 4 * 3

    def test_wavefront_depth(self):
        # The dependency chain length grows with px + py.
        msgs = Sweep3DMotif((5, 5), sweeps=1).generate()
        assert _dag_is_acyclic(msgs)
        # corner-to-corner chain exists: at least one message with deps.
        assert any(m.deps for m in msgs)

    def test_multi_sweep_chains(self):
        msgs = Sweep3DMotif((3, 3), sweeps=2).generate()
        assert _dag_is_acyclic(msgs)
        second_half = msgs[len(msgs) // 2 :]
        assert any(m.deps for m in second_half)

    def test_compute_delay_attached(self):
        msgs = Sweep3DMotif((3, 3), sweeps=1, compute_ns=123.0).generate()
        assert all(m.compute_ns == 123.0 for m in msgs)


class TestFFT:
    def test_balanced_grid(self):
        assert FFTMotif.balanced(64).grid == (8, 8)
        # Non-square counts get the most-square factorisation.
        assert FFTMotif.balanced(512).grid == (32, 16)
        assert FFTMotif.balanced(8192).grid == (128, 64)

    def test_unbalanced_grid(self):
        motif = FFTMotif.unbalanced(64, skew=4)
        assert motif.grid == (16, 4)
        nx, ny = FFTMotif.unbalanced(512).grid
        assert nx * ny == 512 and nx / ny > 8

    def test_message_count(self):
        nx, ny = 4, 4
        msgs = FFTMotif((nx, ny)).generate()
        # Phase1: nx rows of ny(ny-1); phase2: ny cols of nx(nx-1).
        assert len(msgs) == nx * ny * (ny - 1) + ny * nx * (nx - 1)

    def test_phase2_depends_on_phase1(self):
        msgs = FFTMotif((3, 3)).generate()
        phase2 = [m for m in msgs if m.deps]
        assert len(phase2) == 3 * 3 * 2
        assert all(len(m.deps) == 2 for m in phase2)  # ny-1 phase-1 receives

    def test_tiny_count_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            FFTMotif.balanced(2)

    def test_dag_acyclic(self):
        assert _dag_is_acyclic(FFTMotif((4, 4)).generate())


class TestRunner:
    @pytest.fixture(scope="class")
    def env(self):
        topo = build_lps(3, 5)
        tables = RoutingTables(topo.graph)
        return topo, tables

    def test_all_delivered_and_positive_makespan(self, env):
        topo, tables = env
        policy = make_routing("minimal", tables, seed=0)
        motif = Halo3D26Motif((4, 4, 4), iterations=1)
        out = run_motif(topo, policy, motif, SimConfig(concentration=2),
                        placement_seed=1)
        assert out["n_messages"] == 64 * 26
        assert out["makespan_ns"] > 0

    def test_dependencies_enforce_ordering(self, env):
        # Sweep3D's wavefront must take longer than the same messages
        # without dependencies (all-at-once injection).
        topo, tables = env
        policy = make_routing("minimal", tables, seed=0)
        dep_motif = Sweep3DMotif((6, 6), sweeps=1, compute_ns=0.0)

        class FlatSweep(Sweep3DMotif):
            def generate(self):
                msgs = super().generate()
                return [
                    Message(m.mid, m.src_rank, m.dst_rank, m.size, [], 0.0)
                    for m in msgs
                ]

        flat_motif = FlatSweep((6, 6), sweeps=1, compute_ns=0.0)
        cfg = SimConfig(concentration=2)
        dep = run_motif(topo, policy, dep_motif, cfg, placement_seed=2)
        policy2 = make_routing("minimal", tables, seed=0)
        flat = run_motif(topo, policy2, flat_motif, cfg, placement_seed=2)
        assert dep["makespan_ns"] > flat["makespan_ns"]

    def test_compute_delay_extends_makespan(self, env):
        topo, tables = env
        cfg = SimConfig(concentration=2)
        fast = run_motif(
            topo, make_routing("minimal", tables, seed=0),
            Sweep3DMotif((5, 5), sweeps=1, compute_ns=0.0), cfg,
        )
        slow = run_motif(
            topo, make_routing("minimal", tables, seed=0),
            Sweep3DMotif((5, 5), sweeps=1, compute_ns=5000.0), cfg,
        )
        assert slow["makespan_ns"] > fast["makespan_ns"]


#: Every motif family, sized for the live-simulator tests below.
_LIVE_MOTIFS = [
    ("fft", lambda: FFTMotif((4, 4))),
    ("halo3d", lambda: Halo3D26Motif((3, 3, 3), iterations=2)),
    ("sweep3d", lambda: Sweep3DMotif((4, 4), sweeps=2)),
]


class TestLiveSimAllMotifs:
    """Every motif family through the live simulator (not just one).

    Delivery completeness (the DAG drains — every message enters the
    network and arrives) and seed determinism (fixed routing + placement
    seeds reproduce the run byte-for-byte; moving the placement seed
    moves the result) for fft, halo3d, and sweep3d alike.
    """

    @pytest.fixture(scope="class")
    def env(self):
        topo = build_lps(3, 5)
        tables = RoutingTables(topo.graph)
        return topo, tables

    @pytest.mark.parametrize("name,factory", _LIVE_MOTIFS,
                             ids=[m[0] for m in _LIVE_MOTIFS])
    def test_delivery_completeness(self, env, name, factory):
        topo, tables = env
        motif = factory()
        out = run_motif(
            topo, make_routing("ugal", tables, seed=0), motif,
            SimConfig(concentration=2), placement_seed=3,
        )
        n_messages = len(motif.generate())
        assert out["n_messages"] == n_messages
        assert out["delivered"] == n_messages  # nothing lost or stuck
        assert out["delivered_fraction"] == 1.0
        assert out["makespan_ns"] > 0
        assert out["mean_hops"] > 0

    @pytest.mark.parametrize("name,factory", _LIVE_MOTIFS,
                             ids=[m[0] for m in _LIVE_MOTIFS])
    def test_seed_determinism(self, env, name, factory):
        topo, tables = env
        cfg = SimConfig(concentration=2)

        def once(placement_seed):
            return run_motif(
                topo, make_routing("minimal", tables, seed=0), factory(),
                cfg, placement_seed=placement_seed,
            )

        a, b = once(1), once(1)
        assert a == b  # full summary, byte for byte
        moved = once(2)
        assert moved["makespan_ns"] != a["makespan_ns"]
