"""Finite-buffer flow control and the Section V-A deadlock demonstration.

With credit-based finite buffers, cyclic channel dependencies genuinely
deadlock the simulator — and the paper's hop-incremented virtual channels
genuinely fix it.  The ring scenario here is the canonical textbook case:
every router forwards clockwise, buffers hold one packet, and with a single
VC the ring wedges solid.
"""

import numpy as np
import pytest

from repro.graphs.generators import cycle_graph
from repro.routing import RoutingTables
from repro.routing.algorithms import RoutingPolicy
from repro.sim import NetworkSimulator, SimConfig
from repro.topology import build_lps
from repro.topology.base import Topology


class ClockwiseRouting(RoutingPolicy):
    """Always forward to (router + 1) mod n — maximally cyclic."""

    name = "clockwise"

    def __init__(self, tables, n_vcs: int, vc_increment: bool) -> None:
        super().__init__(tables, seed=0)
        self._n_vcs = n_vcs
        self.vc_increment = vc_increment

    def required_vcs(self) -> int:
        return self._n_vcs

    def next_hop(self, net, router: int, pkt) -> int:  # noqa: ARG002
        return (router + 1) % self.tables.graph.n


def _ring_topology(n: int) -> Topology:
    return Topology(name=f"ring{n}", family="test", graph=cycle_graph(n))


def _run_ring(n_vcs: int, n: int = 8, packets_per_node: int = 4):
    topo = _ring_topology(n)
    tables = RoutingTables(topo.graph)
    policy = ClockwiseRouting(tables, n_vcs=n_vcs, vc_increment=n_vcs > 1)
    cfg = SimConfig(
        concentration=1,
        finite_buffers=True,
        buffer_bytes=4096,  # one packet per (link, VC) buffer
        packet_bytes=4096,
    )
    net = NetworkSimulator(topo, policy, cfg, tables=tables)
    for src in range(n):
        for _ in range(packets_per_node):
            net.send(src, (src + n // 2) % n)
    return net.run()


class TestRingDeadlock:
    def test_single_vc_deadlocks(self):
        stats = _run_ring(n_vcs=1)
        assert stats.deadlocked
        assert stats.undelivered > 0

    def test_hop_incremented_vcs_complete(self):
        # n/2 hops max -> n/2 + 1 VCs (the paper's d+1 rule).
        stats = _run_ring(n_vcs=8 // 2 + 1)
        assert not stats.deadlocked
        assert stats.summary()["delivered"] == 8 * 4

    def test_more_traffic_still_safe_with_vcs(self):
        stats = _run_ring(n_vcs=5, packets_per_node=20)
        assert not stats.deadlocked
        assert stats.summary()["delivered"] == 8 * 20


class TestFiniteBufferCorrectness:
    @pytest.fixture(scope="class")
    def env(self):
        topo = build_lps(3, 5)
        tables = RoutingTables(topo.graph)
        return topo, tables

    def _run(self, env, finite: bool, seed: int = 0, n_msgs: int = 400):
        from repro.routing import make_routing

        topo, tables = env
        cfg = SimConfig(concentration=2, finite_buffers=finite,
                        buffer_bytes=2 * 4096)
        net = NetworkSimulator(topo, make_routing("minimal", tables, seed=seed),
                               cfg, tables=tables)
        rng = np.random.default_rng(seed)
        for _ in range(n_msgs):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d))
        return net.run()

    def test_minimal_routing_with_vcs_never_deadlocks(self, env):
        # diameter+1 hop-incremented VCs: guaranteed deadlock-free.
        stats = self._run(env, finite=True)
        assert not stats.deadlocked
        assert stats.summary()["delivered"] == stats.n_injected

    def test_buffers_fully_released(self, env):
        topo, tables = env
        from repro.routing import make_routing

        cfg = SimConfig(concentration=2, finite_buffers=True)
        net = NetworkSimulator(topo, make_routing("minimal", tables), cfg,
                               tables=tables)
        rng = np.random.default_rng(1)
        for _ in range(300):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d))
        net.run()
        assert net._buf_used is not None
        assert net._buf_used.sum() == 0

    def test_backpressure_slows_not_breaks(self, env):
        # Finite buffers may delay deliveries but all packets arrive, and
        # mean latency cannot be lower than the unbounded run.
        free = self._run(env, finite=False, seed=3)
        tight = self._run(env, finite=True, seed=3)
        assert tight.summary()["delivered"] == free.summary()["delivered"]
        assert (
            tight.summary()["mean_latency_ns"]
            >= free.summary()["mean_latency_ns"] - 1e-6
        )
