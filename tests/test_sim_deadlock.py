"""Finite-buffer flow control and the Section V-A deadlock demonstration.

With credit-based finite buffers, cyclic channel dependencies genuinely
deadlock the simulator — and the paper's hop-incremented virtual channels
genuinely fix it.  The ring scenario here is the canonical textbook case:
every router forwards clockwise, buffers hold one packet, and with a single
VC the ring wedges solid.
"""

import numpy as np
import pytest

from repro.errors import BufferDeadlockError
from repro.graphs.generators import cycle_graph
from repro.routing import RoutingTables, make_routing
from repro.routing.algorithms import RoutingPolicy
from repro.sim import BatchedSimulator, NetworkSimulator, SimConfig
from repro.sim.traffic import OpenLoopSource, TrafficPattern
from repro.topology import build_lps
from repro.topology.base import Topology


class ClockwiseRouting(RoutingPolicy):
    """Always forward to (router + 1) mod n — maximally cyclic."""

    name = "clockwise"

    def __init__(self, tables, n_vcs: int, vc_increment: bool) -> None:
        super().__init__(tables, seed=0)
        self._n_vcs = n_vcs
        self.vc_increment = vc_increment

    def required_vcs(self) -> int:
        return self._n_vcs

    def next_hop(self, net, router: int, pkt) -> int:  # noqa: ARG002
        return (router + 1) % self.tables.graph.n


def _ring_topology(n: int) -> Topology:
    return Topology(name=f"ring{n}", family="test", graph=cycle_graph(n))


def _run_ring(n_vcs: int, n: int = 8, packets_per_node: int = 4):
    topo = _ring_topology(n)
    tables = RoutingTables(topo.graph)
    policy = ClockwiseRouting(tables, n_vcs=n_vcs, vc_increment=n_vcs > 1)
    cfg = SimConfig(
        concentration=1,
        finite_buffers=True,
        buffer_bytes=4096,  # one packet per (link, VC) buffer
        packet_bytes=4096,
    )
    net = NetworkSimulator(topo, policy, cfg, tables=tables)
    for src in range(n):
        for _ in range(packets_per_node):
            net.send(src, (src + n // 2) % n)
    return net.run()


class TestRingDeadlock:
    def test_single_vc_deadlocks(self):
        with pytest.raises(BufferDeadlockError) as exc:
            _run_ring(n_vcs=1)
        err = exc.value
        assert err.undelivered > 0
        assert err.blocked > 0
        assert err.stats is not None and err.stats.deadlocked
        assert err.stats.undelivered == err.undelivered
        # The message names the failure and points at the remedy.
        assert "finite-buffer deadlock" in str(err)
        assert "VC budget" in str(err)

    def test_hop_incremented_vcs_complete(self):
        # n/2 hops max -> n/2 + 1 VCs (the paper's d+1 rule).
        stats = _run_ring(n_vcs=8 // 2 + 1)
        assert not stats.deadlocked
        assert stats.summary()["delivered"] == 8 * 4

    def test_more_traffic_still_safe_with_vcs(self):
        stats = _run_ring(n_vcs=5, packets_per_node=20)
        assert not stats.deadlocked
        assert stats.summary()["delivered"] == 8 * 20


class TestFiniteBufferCorrectness:
    @pytest.fixture(scope="class")
    def env(self):
        topo = build_lps(3, 5)
        tables = RoutingTables(topo.graph)
        return topo, tables

    def _run(self, env, finite: bool, seed: int = 0, n_msgs: int = 400):
        from repro.routing import make_routing

        topo, tables = env
        cfg = SimConfig(concentration=2, finite_buffers=finite,
                        buffer_bytes=2 * 4096)
        net = NetworkSimulator(topo, make_routing("minimal", tables, seed=seed),
                               cfg, tables=tables)
        rng = np.random.default_rng(seed)
        for _ in range(n_msgs):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d))
        return net.run()

    def test_minimal_routing_with_vcs_never_deadlocks(self, env):
        # diameter+1 hop-incremented VCs: guaranteed deadlock-free.
        stats = self._run(env, finite=True)
        assert not stats.deadlocked
        assert stats.summary()["delivered"] == stats.n_injected

    def test_buffers_fully_released(self, env):
        topo, tables = env
        from repro.routing import make_routing

        cfg = SimConfig(concentration=2, finite_buffers=True)
        net = NetworkSimulator(topo, make_routing("minimal", tables), cfg,
                               tables=tables)
        rng = np.random.default_rng(1)
        for _ in range(300):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d))
        net.run()
        assert net._buf_used is not None
        assert net._buf_used.sum() == 0

    def test_backpressure_slows_not_breaks(self, env):
        # Finite buffers may delay deliveries but all packets arrive, and
        # mean latency cannot be lower than the unbounded run.
        free = self._run(env, finite=False, seed=3)
        tight = self._run(env, finite=True, seed=3)
        assert tight.summary()["delivered"] == free.summary()["delivered"]
        assert (
            tight.summary()["mean_latency_ns"]
            >= free.summary()["mean_latency_ns"] - 1e-6
        )


class _OffsetTraffic(TrafficPattern):
    """dst = src + 3 (mod N): on a C8 ring the unique minimal path is three
    clockwise hops, so every packet crosses two intermediate buffers — the
    deterministic cyclic-dependency workload both engines can run."""

    name = "offset3"
    stochastic = False

    def destination(self, src: int, rng) -> int:  # noqa: ARG002
        return (src + 3) % self.n_ranks


def _ring_open_loop(backend: str, n_vcs: int, n: int = 8, load: float = 0.9,
                    packets_per_node: int = 6, seed: int = 0):
    """A C8 ring under offset-3 open-loop traffic with the VC budget forced.

    Unlike the clockwise tests above this uses the stock *minimal* routing
    (the only unique shortest path is the clockwise one), so the identical
    scenario runs on both engines; ``required_vcs`` is overridden to probe
    budgets below the deadlock-free bound.
    """
    topo = Topology(name=f"ring{n}", family="test", graph=cycle_graph(n))
    tables = RoutingTables(topo.graph)
    routing = make_routing("minimal", tables, seed=seed)
    routing.required_vcs = lambda: n_vcs
    cfg = SimConfig(concentration=1, finite_buffers=True,
                    buffer_bytes=4096, packet_bytes=4096)
    cls = {"event": NetworkSimulator, "batched": BatchedSimulator}[backend]
    net = cls(topo, routing, cfg, tables=tables)
    r2e = np.arange(n, dtype=np.int64)
    pattern = _OffsetTraffic(n)
    for rank in range(n):
        net.add_open_loop_source(
            OpenLoopSource(rank, rank, pattern, r2e, load,
                           packets_per_node, seed=seed * 1003 + rank)
        )
    return net


class TestCrossEngineDeadlock:
    """Both engines hit the same genuine deadlock — and the same fix."""

    @pytest.mark.parametrize("backend", ["event", "batched"])
    def test_single_vc_deadlocks_with_witness(self, backend):
        with pytest.raises(BufferDeadlockError) as exc:
            _ring_open_loop(backend, n_vcs=1).run()
        err = exc.value
        assert err.undelivered > 0
        assert err.stats is not None and err.stats.deadlocked
        # The witness is a genuine cycle through the ring's (edge, VC)
        # buffers: non-empty, unique nodes, all on VC 0.
        assert len(err.cycle) >= 2
        assert len(set(err.cycle)) == len(err.cycle)
        assert all(vc == 0 for _, vc in err.cycle)

    def test_engines_agree_on_the_witness_cycle(self):
        def cycle_of(backend):
            with pytest.raises(BufferDeadlockError) as exc:
                _ring_open_loop(backend, n_vcs=1).run()
            return exc.value.cycle

        ev, bt = cycle_of("event"), cycle_of("batched")
        # Same cyclic dependency up to rotation.
        assert set(ev) == set(bt)

    @pytest.mark.parametrize("backend", ["event", "batched"])
    def test_enough_vcs_complete(self, backend):
        stats = _ring_open_loop(backend, n_vcs=4).run()
        assert not stats.deadlocked
        assert len(stats.latencies_ns) == stats.n_injected > 0


class TestBatchedBackpressureCorrectness:
    """The batched credit loop against its own invariants and the event
    engine's aggregates (exact statements only; statistical agreement is
    the differential harness's job)."""

    @pytest.fixture(scope="class")
    def env(self):
        topo = build_lps(3, 5)
        tables = RoutingTables(topo.graph)
        return topo, tables

    def _run(self, env, backend, finite, seed=0, load=0.7):
        from repro.experiments.common import build_synthetic_sim

        topo, _ = env
        cfg = SimConfig(concentration=2, finite_buffers=finite,
                        buffer_bytes=2 * 4096)
        net = build_synthetic_sim(
            topo, "minimal", "random", load, concentration=2, n_ranks=32,
            packets_per_rank=10, seed=seed, config=cfg, backend=backend,
        )
        stats = net.run()
        return net, stats

    def test_buffers_fully_released(self, env):
        net, stats = self._run(env, "batched", finite=True)
        assert len(stats.latencies_ns) == stats.n_injected
        assert net._buf_used is not None
        assert int(net._buf_used.sum()) == 0

    def test_backpressure_does_not_speed_up_the_batched_engine(self, env):
        # Not an exact theorem here: a blocked queue head lets a later
        # *eligible* entry win its port, which can shave sub-cycle charge
        # off the analytic latency.  Bound the effect instead: finite
        # buffers may not make the mean latency meaningfully lower.
        _, free = self._run(env, "batched", finite=False, seed=3)
        _, tight = self._run(env, "batched", finite=True, seed=3)
        assert tight.summary()["delivered"] == free.summary()["delivered"]
        assert (
            tight.summary()["mean_latency_ns"]
            >= free.summary()["mean_latency_ns"] * (1 - 0.005)
        )

    def test_finite_buffer_aggregates_track_the_event_engine(self, env):
        _, ev = self._run(env, "event", finite=True, seed=5)
        _, bt = self._run(env, "batched", finite=True, seed=5)
        evs, bts = ev.summary(), bt.summary()
        assert evs["delivered"] == bts["delivered"]
        assert bts["mean_hops"] == pytest.approx(evs["mean_hops"], rel=0.05)
        assert bts["mean_latency_ns"] == pytest.approx(
            evs["mean_latency_ns"], rel=0.15
        )
