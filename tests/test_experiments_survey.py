"""Tests for the spectral survey experiment."""

import pytest

from repro.experiments import survey


class TestSurveyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return survey.run(seed=0, with_xpander=True)

    def test_has_all_rows(self, result):
        names = [r["topology"] for r in result.rows]
        assert any("LPS" in n for n in names)
        assert any("Xpander" in n for n in names)
        assert any("hypercube" in n for n in names)

    def test_ordering_story(self, result):
        by = {r["topology"]: r for r in result.rows}
        lps = next(v for k, v in by.items() if "LPS" in k)
        cube = next(v for k, v in by.items() if "hypercube" in k)
        assert lps["lambda_over_bound"] <= 1.0 + 1e-9
        assert cube["lambda_over_bound"] > lps["lambda_over_bound"]

    def test_renders(self, result):
        assert "Ramanujan" in result.to_text()

    def test_without_xpander(self):
        res = survey.run(seed=0, with_xpander=False)
        assert not any("Xpander" in r["topology"] for r in res.rows)
