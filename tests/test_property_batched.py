"""Hypothesis properties of the batched engine's packed-key waiting set.

Two invariants the cycle engine's correctness rests on:

* **Permutation invariance** — the waiting set is maintained by sorted
  merges of arrival batches, so the *final sorted state* (and therefore
  every contention winner) must depend only on the packets' packed keys
  (port, enqueue cycle, tie-break), never on the order in which same-cycle
  batches happened to be merged.  With the closed-loop arrival-time
  tie-break the key is a pure function of the packet, which makes the
  property exactly testable: enqueue the same packets as differently
  chunked and permuted batches and demand identical waiting sets and
  identical per-port winners.
* **Conservation across epoch-boundary rewrites** — applying a fault
  schedule rewrites the masked next-hop arrays and surgically edits the
  waiting set (requeues, drops) mid-run.  No packet may be lost or
  duplicated in the process: every injected packet ends either delivered
  or in the drop ledger, exactly once; and once every fault has recovered,
  the masked arrays must equal the pristine ones bit-for-bit (recovery is
  exact because the rewrite is a pure function of the FaultMask counts).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import RoutingTables, make_routing
from repro.sim import SimConfig
from repro.sim.batched import _ENQ_MASK, _PORT_SHIFT, BatchedSimulator
from repro.sim.faults import FaultSchedule
from repro.sim.traffic import OpenLoopSource, make_traffic
from repro.topology import build_lps


@pytest.fixture(scope="module")
def parts():
    topo = build_lps(3, 5)
    tables = RoutingTables(topo.graph)
    return topo, tables


def _fresh_engine(parts) -> BatchedSimulator:
    topo, tables = parts
    net = BatchedSimulator(
        topo, make_routing("minimal", tables, seed=0),
        SimConfig(concentration=2), tables=tables,
    )
    # Closed-loop tie-break mode: the tie encodes the arrival time, so the
    # packed key is a deterministic function of the packet.
    n = 128
    net._msg_sizes = np.full(n, 64, dtype=np.int64)
    net._cl_tau = net._tau
    net._t_arr = np.zeros(n)
    net._w_comb = np.empty(0, dtype=np.int64)
    net._w_idx = np.empty(0, dtype=np.int64)
    net._w_nxt = np.empty(0, dtype=np.int64)
    return net


@st.composite
def _waiting_entries(draw):
    """Distinct packets with ports and unique in-cycle arrival offsets."""
    n = draw(st.integers(min_value=1, max_value=40))
    ports = draw(
        st.lists(st.integers(min_value=0, max_value=7),
                 min_size=n, max_size=n)
    )
    # Globally unique quantized offsets => unique packed keys per port.
    offsets = draw(
        st.lists(st.integers(min_value=0, max_value=_ENQ_MASK - 2),
                 min_size=n, max_size=n, unique=True)
    )
    n_chunks = draw(st.integers(min_value=1, max_value=4))
    perm = draw(st.permutations(list(range(n))))
    return ports, offsets, n_chunks, perm


def _enqueue_all(net, pids, ports, cycle, chunks):
    for chunk in chunks:
        if len(chunk):
            net._enqueue(pids[chunk], ports[chunk], cycle)


def _winners(net):
    """One winner per port: first of each sorted segment."""
    comb = net._w_comb
    if not comb.size:
        return {}
    port = comb >> _PORT_SHIFT
    first = np.empty(comb.size, dtype=bool)
    first[0] = True
    np.not_equal(port[1:], port[:-1], out=first[1:])
    return dict(zip(port[first].tolist(), net._w_idx[first].tolist()))


class TestWaitingSetPermutationInvariance:
    @settings(max_examples=60, deadline=None)
    @given(_waiting_entries())
    def test_winners_invariant_under_arrival_permutation(self, parts, data):
        ports_l, offsets, n_chunks, perm = data
        n = len(ports_l)
        cycle = 3
        ports = np.asarray(ports_l, dtype=np.int64)
        pids = np.arange(n, dtype=np.int64)

        def run(order):
            net = _fresh_engine(parts)
            # Arrival time within the cycle encodes the tie-break exactly.
            t0 = (cycle - 1) * net._cl_tau
            for pid, off in zip(range(n), offsets):
                net._t_arr[pid] = t0 + net._cl_tau * (
                    off / (_ENQ_MASK - 1)
                )
            chunks = np.array_split(np.asarray(order, dtype=np.int64),
                                    n_chunks)
            _enqueue_all(net, pids, ports, cycle, chunks)
            return net

        a = run(list(range(n)))
        b = run(perm)

        # Identical waiting sets: same keys, same packets, same order.
        assert a._w_comb.tolist() == b._w_comb.tolist()
        assert a._w_idx.tolist() == b._w_idx.tolist()
        assert a._w_nxt.tolist() == b._w_nxt.tolist()
        # No packet lost or duplicated by the sorted merges.
        assert sorted(a._w_idx.tolist()) == list(range(n))
        # And the contention winners are identical per port.
        assert _winners(a) == _winners(b)

    @settings(max_examples=30, deadline=None)
    @given(_waiting_entries())
    def test_waiting_set_stays_sorted(self, parts, data):
        ports_l, offsets, n_chunks, perm = data
        n = len(ports_l)
        net = _fresh_engine(parts)
        for pid, off in zip(range(n), offsets):
            net._t_arr[pid] = 2 * net._cl_tau * (off / (_ENQ_MASK - 1))
        chunks = np.array_split(np.asarray(perm, dtype=np.int64), n_chunks)
        _enqueue_all(net, np.arange(n, dtype=np.int64),
                     np.asarray(ports_l, dtype=np.int64), 2, chunks)
        comb = net._w_comb
        assert np.all(comb[:-1] <= comb[1:])


# ---------------------------------------------------------------------------
# Epoch-boundary rewrites conserve packets and recover exactly
# ---------------------------------------------------------------------------
def _run_faulted(parts, schedule, seed=5, n_ranks=24, packets_per_rank=6):
    topo, tables = parts
    net = BatchedSimulator(
        topo, make_routing("minimal", tables, seed=seed),
        SimConfig(concentration=2), tables=tables, faults=schedule,
    )
    pattern = make_traffic("random", n_ranks)
    r2e = np.arange(n_ranks, dtype=np.int64) * 2
    for rank in range(n_ranks):
        net.add_open_loop_source(
            OpenLoopSource(rank, int(r2e[rank]), pattern, r2e, 0.5,
                           packets_per_rank, seed=seed * 1_000 + rank)
        )
    stats = net.run()
    return net, stats


@st.composite
def _schedules(draw):
    """A mixed link/router schedule; optionally fully recovered."""
    topo = build_lps(3, 5)
    g = topo.graph
    heads = np.repeat(np.arange(g.n), np.diff(g.indptr))
    n_links = draw(st.integers(min_value=0, max_value=6))
    idx = draw(
        st.lists(st.integers(min_value=0, max_value=len(g.indices) - 1),
                 min_size=n_links, max_size=n_links, unique=True)
    )
    routers = draw(
        st.lists(st.integers(min_value=0, max_value=g.n - 1),
                 min_size=0, max_size=2, unique=True)
    )
    recover_all = draw(st.booleans())
    t_fail = draw(st.floats(min_value=100.0, max_value=20_000.0))
    events = []
    seen_links = set()
    for i in idx:
        a, b = int(heads[i]), int(g.indices[i])
        key = (min(a, b), max(a, b))
        if key in seen_links or a in routers or b in routers:
            continue  # router faults fail incident links themselves
        seen_links.add(key)
        events.append((t_fail, "link-down", a, b))
        if recover_all:
            events.append((t_fail * 2 + 500.0, "link-up", a, b))
    for r in routers:
        events.append((t_fail, "router-down", r))
        if recover_all:
            events.append((t_fail * 2 + 500.0, "router-up", r))
    return FaultSchedule(events), recover_all


class TestEpochRewriteConservation:
    @settings(max_examples=25, deadline=None)
    @given(_schedules())
    def test_no_packet_lost_or_duplicated_across_rewrites(self, parts, data):
        schedule, recover_all = data
        net, stats = _run_faulted(parts, schedule)
        delivered = len(stats.latencies_ns)
        # Conservation: delivered + dropped == injected, each exactly once.
        assert delivered + stats.n_dropped == stats.n_injected
        assert sum(stats.drops.values()) == stats.n_dropped
        assert int(net._dropped.sum()) == stats.n_dropped
        # The waiting set fully drained.
        assert net._w_comb.size == 0
        # Every schedule event produced its epoch mark.
        assert len(stats.epochs) == len(schedule)

    @settings(max_examples=25, deadline=None)
    @given(_schedules())
    def test_full_recovery_restores_the_masked_tables_exactly(
        self, parts, data
    ):
        schedule, recover_all = data
        net, stats = _run_faulted(parts, schedule)
        if not recover_all or len(schedule) == 0:
            return
        # The rewrite is a pure function of the FaultMask counts, so after
        # the last recovery the masked arrays equal the pristine table
        # bit-for-bit — stale-table resilience with exact recovery.
        assert net._mask.pristine
        assert np.array_equal(net._m_indptr, net._nh_indptr)
        assert np.array_equal(net._m_indices, net._nh_indices)
