"""Tests for eigenvalue machinery against closed-form spectra."""

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)
from repro.spectral.eigen import (
    adjacency_extremes,
    is_ramanujan,
    lambda_g,
    mu1,
    normalized_laplacian_gap,
    spectral_gap,
)
from repro.spectral.reference import (
    complete_graph_spectrum,
    cycle_graph_spectrum,
    hypercube_spectrum,
    torus_spectrum,
)


class TestAgainstClosedForms:
    def test_complete(self):
        g = complete_graph(9)
        lo, hi = adjacency_extremes(g)
        exact = complete_graph_spectrum(9)
        assert hi[-1] == pytest.approx(exact[-1])
        assert lo[0] == pytest.approx(exact[0])

    def test_cycle(self):
        g = cycle_graph(12)
        lo, hi = adjacency_extremes(g)
        exact = cycle_graph_spectrum(12)
        assert hi[-1] == pytest.approx(exact[-1])
        assert hi[-2] == pytest.approx(exact[-2], abs=1e-8)
        assert lo[0] == pytest.approx(exact[0])

    def test_hypercube(self):
        g = hypercube_graph(5)
        lo, hi = adjacency_extremes(g)
        assert hi[-1] == pytest.approx(5.0)
        assert hi[-2] == pytest.approx(3.0)
        assert lo[0] == pytest.approx(-5.0)

    def test_torus(self):
        dims = (4, 5)
        g = torus_graph(dims)
        exact = torus_spectrum(dims)
        lo, hi = adjacency_extremes(g)
        assert hi[-1] == pytest.approx(exact[-1])
        assert hi[-2] == pytest.approx(exact[-2], abs=1e-8)

    def test_hypercube_spectrum_multiplicities(self):
        spec = hypercube_spectrum(4)
        assert len(spec) == 16
        vals, counts = np.unique(spec, return_counts=True)
        assert vals.tolist() == [-4.0, -2.0, 0.0, 2.0, 4.0]
        assert counts.tolist() == [1, 4, 6, 4, 1]


class TestDerivedQuantities:
    def test_mu1_hypercube(self):
        # Q_d: lambda(G) = d - 2 (the -d eigenvalue is excluded as
        # bipartite) -> mu1 = 2/d.
        for d in (3, 4, 6):
            assert mu1(hypercube_graph(d)) == pytest.approx(2.0 / d, abs=1e-8)

    def test_mu1_complete_uses_magnitude(self):
        # K_n: lambda(G) = |-1| = 1 -> mu1 = (n-2)/(n-1) (Table I convention;
        # the signed-lambda2 Laplacian gap would exceed 1 here).
        assert mu1(complete_graph(9)) == pytest.approx(7.0 / 8.0)

    def test_spectral_gap_complete(self):
        # K_n: gap = (n-1) - (-1) = n.
        assert spectral_gap(complete_graph(8)) == pytest.approx(8.0)

    def test_lambda_g_complete(self):
        assert lambda_g(complete_graph(10)) == pytest.approx(1.0)

    def test_lambda_g_bipartite_excludes_minus_k(self):
        # C6 is 2-regular bipartite: eigenvalues 2, 1, -1, -2.
        g = cycle_graph(6)
        assert lambda_g(g) == pytest.approx(1.0, abs=1e-8)

    def test_normalized_laplacian_matches_spectral_gap_for_regular(self):
        g = random_regular_graph(60, 6, seed=2)
        assert normalized_laplacian_gap(g) == pytest.approx(
            spectral_gap(g) / 6.0, abs=1e-6
        )


class TestRamanujanPredicate:
    def test_complete_is_ramanujan(self):
        # K_n: lambda = 1 <= 2 sqrt(n-2).
        assert is_ramanujan(complete_graph(10))

    def test_long_cycle_not_ramanujan(self):
        # C_n (k=2): bound is 2; lambda2 = 2cos(2pi/n) < 2 -> technically
        # Ramanujan. Hypercubes are NOT: lambda = d-2 > 2 sqrt(d-1) for d >= 8.
        assert not is_ramanujan(hypercube_graph(8))

    def test_random_regular_usually_near_ramanujan(self):
        # Friedman: lambda -> 2 sqrt(k-1) + o(1); with slack it passes.
        g = random_regular_graph(200, 4, seed=8)
        assert lambda_g(g) < 2.0 * np.sqrt(3.0) + 0.5


class TestLanczosPath:
    def test_large_graph_uses_sparse_solver(self):
        # n > dense threshold: exercised via a 2000-vertex random regular.
        g = random_regular_graph(2000, 4, seed=1)
        lo, hi = adjacency_extremes(g)
        assert hi[-1] == pytest.approx(4.0, abs=1e-5)
        assert lo[0] >= -4.0 - 1e-9

    def test_lanczos_agrees_with_dense_just_above_threshold(self):
        # The solver switch at _DENSE_THRESHOLD must not be observable:
        # a graph 4 vertices over the boundary takes the Lanczos path, and
        # its extremes must match a direct dense solve to _EIG_TOL.
        from repro.spectral.eigen import _DENSE_THRESHOLD, _EIG_TOL

        g = random_regular_graph(_DENSE_THRESHOLD + 4, 6, seed=3)
        lo, hi = adjacency_extremes(g)
        exact = np.linalg.eigvalsh(g.adjacency().toarray())
        np.testing.assert_allclose(hi, exact[-len(hi):], atol=_EIG_TOL)
        np.testing.assert_allclose(lo, exact[: len(lo)], atol=_EIG_TOL)

    def test_dense_path_just_below_threshold(self):
        from repro.spectral.eigen import _DENSE_THRESHOLD

        g = random_regular_graph(_DENSE_THRESHOLD - 2, 6, seed=3)
        lo, hi = adjacency_extremes(g)
        exact = np.linalg.eigvalsh(g.adjacency().toarray())
        np.testing.assert_array_equal(hi, exact[-len(hi):])
        np.testing.assert_array_equal(lo, exact[: len(lo)])

    def test_lanczos_independent_of_global_rng_state(self):
        # eigsh seeds its start vector from numpy's global RNG unless a
        # v0 is supplied; the deterministic v0 makes repeated calls
        # bit-identical regardless of interleaved np.random draws.
        from repro.spectral.eigen import _DENSE_THRESHOLD

        g = random_regular_graph(_DENSE_THRESHOLD + 4, 6, seed=5)
        np.random.seed(11)
        first = adjacency_extremes(g)
        np.random.seed(999)
        np.random.random(1000)
        second = adjacency_extremes(g)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_lambda_g_stable_under_relabeling(self):
        # lambda(G) is a graph invariant: relabeling the vertices (which
        # permutes neighbour rows and changes the Lanczos iteration
        # order) must not move it past _EIG_TOL, on both solver paths.
        from repro.graphs.csr import CSRGraph
        from repro.spectral.eigen import _DENSE_THRESHOLD, _EIG_TOL

        for n, k, seed in ((64, 4, 7), (_DENSE_THRESHOLD + 4, 6, 7)):
            g = random_regular_graph(n, k, seed=seed)
            perm = np.random.default_rng(13).permutation(n)
            edges = perm[g.edge_array()]
            relabeled = CSRGraph.from_edges(n, edges)
            assert lambda_g(relabeled) == pytest.approx(
                lambda_g(g), abs=_EIG_TOL
            )
