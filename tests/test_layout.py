"""Tests for the machine room, matching, QAP layout, power and latency."""

import numpy as np
import pytest

from repro.graphs.generators import cycle_graph, hypercube_graph
from repro.layout import (
    MachineRoom,
    cabinet_pairing,
    latency_statistics,
    latency_sweep,
    layout_topology,
    native_layout,
    power_report,
)
from repro.layout.power import PowerModel
from repro.layout.qap import _cabinet_graph, _layout_cost
from repro.topology import build_lps
from repro.topology.base import Topology


@pytest.fixture(scope="module")
def lps_small():
    return build_lps(3, 5)  # 120 routers


class TestMachineRoom:
    def test_cabinet_count(self):
        room = MachineRoom(120)
        assert room.n_cabinets == 60
        assert room.x * room.y >= 60

    def test_wire_lengths(self):
        room = MachineRoom(8)
        assert room.wire_length(0, 0) == 2.0
        # Adjacent in y: 4 + 0.6; adjacent in x: 4 + 2.
        pos = room.cabinet_grid_positions()
        d = room.cabinet_distance_matrix()
        i, j = 0, 1
        dy = abs(pos[i, 1] - pos[j, 1])
        dx = abs(pos[i, 0] - pos[j, 0])
        assert d[i, j] == pytest.approx(4 + 2 * dx + 0.6 * dy)

    def test_distance_matrix_symmetric(self):
        room = MachineRoom(50)
        d = room.cabinet_distance_matrix()
        assert np.array_equal(d, d.T)

    def test_router_positions_shape(self):
        room = MachineRoom(30)
        pos = room.router_positions()
        assert pos.shape == (30, 2)
        # cabinet mates share a position
        assert np.array_equal(pos[0], pos[1])


class TestCabinetPairing:
    def test_pairs_cover_all(self, lps_small):
        cab = cabinet_pairing(lps_small.graph, seed=0)
        assert cab.min() >= 0
        counts = np.bincount(cab)
        assert counts.max() <= 2

    def test_matched_pairs_are_edges_mostly(self, lps_small):
        g = lps_small.graph
        cab = cabinet_pairing(g, seed=0)
        pairs = {}
        for r, c in enumerate(cab):
            pairs.setdefault(int(c), []).append(r)
        edge_pairs = sum(
            1 for vs in pairs.values() if len(vs) == 2 and g.has_edge(*vs)
        )
        # exact matching on a connected regular graph: near-perfect.
        assert edge_pairs >= g.n // 2 - 2

    def test_odd_vertex_count(self):
        g = cycle_graph(7)
        cab = cabinet_pairing(g, seed=1)
        assert len(np.unique(cab)) == 4  # 3 pairs + 1 single


class TestQAPLayout:
    def test_layout_improves_over_random(self, lps_small):
        layout = layout_topology(lps_small, seed=0)
        room = layout.room
        w = _cabinet_graph(lps_small.graph, layout.cabinet_of)
        nc = w.shape[0]
        d = room.cabinet_distance_matrix()[:nc, :nc]
        rng = np.random.default_rng(0)
        random_costs = [
            _layout_cost(w, d, rng.permutation(nc)) for _ in range(5)
        ]
        assert _layout_cost(w, d, layout.slot_of) < min(random_costs)

    def test_wire_lengths_aligned_with_edges(self, lps_small):
        layout = layout_topology(lps_small, seed=0)
        assert len(layout.wire_lengths) == lps_small.graph.num_edges
        assert layout.min_wire() if hasattr(layout, "min_wire") else True
        assert layout.wire_lengths.min() >= 2.0

    def test_intra_cabinet_links_are_2m(self, lps_small):
        layout = layout_topology(lps_small, seed=0)
        edges = lps_small.graph.edge_array()
        same = layout.cabinet_of[edges[:, 0]] == layout.cabinet_of[edges[:, 1]]
        assert np.all(layout.wire_lengths[same] == 2.0)

    def test_slot_assignment_is_permutation(self, lps_small):
        layout = layout_topology(lps_small, seed=0)
        nc = int(layout.cabinet_of.max()) + 1
        assert sorted(layout.slot_of.tolist()) == list(range(nc))

    def test_native_layout_identity(self, lps_small):
        layout = native_layout(lps_small)
        assert np.array_equal(
            layout.cabinet_of, np.arange(120) // 2
        )

    def test_native_at_least_as_long_as_optimised(self, lps_small):
        nat = native_layout(lps_small)
        opt = layout_topology(lps_small, seed=0)
        assert opt.total_wire_m <= nat.total_wire_m


class TestPower:
    def test_report_fields(self, lps_small):
        layout = layout_topology(lps_small, seed=0)
        rep = power_report(layout, bisection_links=100)
        assert rep["electrical_links"] + rep["optical_links"] == lps_small.n_links
        assert rep["total_power_w"] > 0
        assert rep["mw_per_gbps"] > 0

    def test_optical_premium(self):
        m = PowerModel()
        assert m.optical_port_w == pytest.approx(3.76 * 1.25)

    def test_threshold_moves_links(self, lps_small):
        layout = layout_topology(lps_small, seed=0)
        strict = power_report(layout, 100, PowerModel(electrical_reach_m=2.5))
        loose = power_report(layout, 100, PowerModel(electrical_reach_m=50.0))
        assert strict["electrical_links"] < loose["electrical_links"]
        assert strict["total_power_w"] > loose["total_power_w"]


class TestLatency:
    def test_zero_switch_latency_cable_only(self, lps_small):
        layout = layout_topology(lps_small, seed=0)
        avg, mx = latency_statistics(layout, 0.0)
        assert 0 < avg <= mx

    def test_monotone_in_switch_latency(self, lps_small):
        layout = layout_topology(lps_small, seed=0)
        rows = latency_sweep(layout, [0.0, 100.0, 200.0])
        avgs = [r["avg_latency_ns"] for r in rows]
        assert avgs[0] < avgs[1] < avgs[2]

    def test_latency_at_least_hop_floor(self, lps_small):
        # With huge switch latency, latency ~ hops * switch.
        from repro.graphs.metrics import average_distance

        layout = layout_topology(lps_small, seed=0)
        s = 100_000.0
        avg, _ = latency_statistics(layout, s)
        hops = average_distance(lps_small.graph)
        assert avg == pytest.approx(hops * s, rel=0.05)
