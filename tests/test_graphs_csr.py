"""Tests for the CSR graph container."""

import numpy as np
import pytest

from repro.errors import ConstructionError
from repro.graphs.csr import CSRGraph


@pytest.fixture
def triangle():
    return CSRGraph.from_edges(3, np.array([[0, 1], [1, 2], [2, 0]]))


class TestFromEdges:
    def test_basic(self, triangle):
        assert triangle.n == 3
        assert triangle.num_edges == 3
        assert triangle.degree() == 2

    def test_symmetrised(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1]]))
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, np.array([[0, 0], [0, 1], [2, 2]]))
        assert g.num_edges == 1

    def test_parallel_deduplicated(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_edges == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ConstructionError):
            CSRGraph.from_edges(3, np.array([[0, 3]]))
        with pytest.raises(ConstructionError):
            CSRGraph.from_edges(3, np.array([[-1, 1]]))

    def test_neighbors_sorted(self):
        g = CSRGraph.from_edges(5, np.array([[2, 4], [2, 0], [2, 3], [2, 1]]))
        assert g.neighbors(2).tolist() == [0, 1, 3, 4]

    def test_isolated_vertices_allowed(self):
        g = CSRGraph.from_edges(5, np.array([[0, 1]]))
        assert g.degrees().tolist() == [1, 1, 0, 0, 0]


class TestAccessors:
    def test_edge_array_each_edge_once(self, triangle):
        e = triangle.edge_array()
        assert len(e) == 3
        assert np.all(e[:, 0] < e[:, 1])

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 2)
        assert not triangle.has_edge(0, 0)

    def test_is_regular(self, triangle):
        assert triangle.is_regular()
        g = CSRGraph.from_edges(3, np.array([[0, 1]]))
        assert not g.is_regular()
        with pytest.raises(ConstructionError):
            g.degree()

    def test_adjacency_matrix(self, triangle):
        a = triangle.adjacency().toarray()
        assert np.array_equal(a, np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], float))

    def test_adjacency_cached(self, triangle):
        assert triangle.adjacency() is triangle.adjacency()


class TestMutationByCopy:
    def test_without_edges(self, triangle):
        g = triangle.without_edges(np.array([[1, 0]]))  # orientation ignored
        assert g.num_edges == 2
        assert not g.has_edge(0, 1)

    def test_without_edges_keeps_original(self, triangle):
        _ = triangle.without_edges(np.array([[0, 1]]))
        assert triangle.num_edges == 3

    def test_subgraph(self):
        g = CSRGraph.from_edges(5, np.array([[0, 1], [1, 2], [2, 3], [3, 4]]))
        sub = g.subgraph(np.array([1, 2, 3]))
        assert sub.n == 3 and sub.num_edges == 2


class TestNetworkxInterop:
    def test_roundtrip(self, triangle):
        nx_g = triangle.to_networkx()
        back = CSRGraph.from_networkx(nx_g)
        assert back.n == 3 and back.num_edges == 3
