"""Tests for repro.nt.quaternions."""

import pytest

from repro.nt.primes import primes_below
from repro.nt.quaternions import (
    Quaternion,
    lps_generators_alpha,
    sum_of_four_squares_representations,
)


class TestQuaternionAlgebra:
    def test_norm(self):
        assert Quaternion(1, 2, 3, 4).norm() == 30

    def test_conjugate_norm_product(self):
        q = Quaternion(2, -1, 3, 0)
        prod = q * q.conjugate()
        assert (prod.a, prod.b, prod.c, prod.d) == (q.norm(), 0, 0, 0)

    def test_multiplication_non_commutative(self):
        i = Quaternion(0, 1, 0, 0)
        j = Quaternion(0, 0, 1, 0)
        k = Quaternion(0, 0, 0, 1)
        ij = i * j
        ji = j * i
        assert (ij.a, ij.b, ij.c, ij.d) == (0, 0, 0, 1)  # ij = k
        assert (ji.a, ji.b, ji.c, ji.d) == (0, 0, 0, -1)  # ji = -k
        ksq = k * k
        assert ksq.a == -1

    def test_norm_multiplicative(self):
        q1 = Quaternion(1, 2, -1, 3)
        q2 = Quaternion(0, -2, 4, 1)
        assert (q1 * q2).norm() == q1.norm() * q2.norm()

    def test_addition(self):
        s = Quaternion(1, 2, 3, 4) + Quaternion(4, 3, 2, 1)
        assert (s.a, s.b, s.c, s.d) == (5, 5, 5, 5)


class TestFourSquares:
    @pytest.mark.parametrize("p", [3, 5, 7, 11, 13, 17, 19, 23, 29])
    def test_jacobi_count_for_primes(self, p):
        # Jacobi: r4(n) = 8 sigma(n) for odd n -> 8(p+1) for prime p.
        reps = sum_of_four_squares_representations(p)
        assert len(reps) == 8 * (p + 1)

    def test_all_sums_correct(self):
        for rep in sum_of_four_squares_representations(13):
            assert sum(x * x for x in rep) == 13

    def test_zero(self):
        assert sum_of_four_squares_representations(0) == [(0, 0, 0, 0)]


class TestLPSGeneratorSolutions:
    @pytest.mark.parametrize("p", [int(p) for p in primes_below(60) if p > 2])
    def test_count_is_p_plus_1(self, p):
        assert len(lps_generators_alpha(p)) == p + 1

    def test_paper_example_p3(self):
        # Example 1: the four solutions for p = 3.
        sols = set(lps_generators_alpha(3))
        assert sols == {
            (0, 1, 1, 1),
            (0, 1, -1, -1),
            (0, 1, -1, 1),
            (0, 1, 1, -1),
        }

    def test_normalisation_p1mod4(self):
        for a0, a1, a2, a3 in lps_generators_alpha(13):
            assert a0 > 0 and a0 % 2 == 1
            # The other components must be even (norm = 1 mod 4 forces it).
            assert a1 % 2 == a2 % 2 == a3 % 2 == 0

    def test_normalisation_p3mod4(self):
        for a0, a1, a2, a3 in lps_generators_alpha(23):
            assert (a0 > 0 and a0 % 2 == 0) or (a0 == 0 and a1 > 0)

    def test_closed_under_conjugation_or_involution(self):
        # For p=1 (mod 4): conjugate of a solution is a solution.
        sols = set(lps_generators_alpha(13))
        for a0, a1, a2, a3 in sols:
            assert (a0, -a1, -a2, -a3) in sols

    def test_rejects_even_or_unit(self):
        with pytest.raises(ValueError):
            lps_generators_alpha(4)
        with pytest.raises(ValueError):
            lps_generators_alpha(1)
