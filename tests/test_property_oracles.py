"""Hypothesis property tests for the algebraic routing oracles.

The Cayley oracle's entire correctness argument is *translation
invariance*: distances on a Cayley graph are invariant under left
multiplication, so one BFS ball per canonical source answers every pair.
These properties probe that argument directly on randomly drawn group
elements rather than a fixed sample, plus the two cache/bound contracts
the simulator relies on: LRU eviction never changes an answer, and the
landmark upper bound is admissible.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.routing.oracles import (
    CayleyOracle,
    DenseOracle,
    LandmarkOracle,
    translator_for,
)
from repro.topology import build_canonical_dragonfly, build_lps, build_paley

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def lps():
    topo = build_lps(3, 5)
    return topo, translator_for(topo), DenseOracle(topo.graph, use_cache=False)


@pytest.fixture(scope="module")
def paley():
    topo = build_paley(29)
    return topo, translator_for(topo), DenseOracle(topo.graph, use_cache=False)


@pytest.fixture(scope="module")
def dragonfly():
    topo = build_canonical_dragonfly(6)
    return topo, DenseOracle(topo.graph, use_cache=False)


class TestTranslationInvariance:
    """d(u, v) == d(g*u, g*v) for every group element g — the property
    that lets CayleyOracle serve any pair from one ball per canonical
    source."""

    @given(data=st.data())
    @SETTINGS
    def test_lps_left_translation_preserves_distance(self, lps, data):
        topo, tr, dense = lps
        n = topo.n_routers
        u = data.draw(st.integers(0, n - 1), label="u")
        v = data.draw(st.integers(0, n - 1), label="v")
        g = data.draw(st.integers(0, n - 1), label="g")
        gu = int(tr.left_translate(g, np.array([u]))[0])
        gv = int(tr.left_translate(g, np.array([v]))[0])
        assert dense.distance(u, v) == dense.distance(gu, gv)

    @given(data=st.data())
    @SETTINGS
    def test_paley_left_translation_preserves_distance(self, paley, data):
        topo, tr, dense = paley
        n = topo.n_routers
        u = data.draw(st.integers(0, n - 1), label="u")
        v = data.draw(st.integers(0, n - 1), label="v")
        g = data.draw(st.integers(0, n - 1), label="g")
        gu = int(tr.left_translate(g, np.array([u]))[0])
        gv = int(tr.left_translate(g, np.array([v]))[0])
        assert dense.distance(u, v) == dense.distance(gu, gv)

    @given(data=st.data())
    @SETTINGS
    def test_translate_canonicalises_without_changing_distance(
        self, lps, data
    ):
        """The (canonical_source, image) pair the oracle actually looks up
        must be at the same distance as the original pair."""
        topo, tr, dense = lps
        n = topo.n_routers
        us = np.array([data.draw(st.integers(0, n - 1), label="u")])
        ds = np.array([data.draw(st.integers(0, n - 1), label="d")])
        form, z = tr.translate(us, ds)
        assert dense.distance(int(us[0]), int(ds[0])) == dense.distance(
            int(form[0]), int(z[0])
        )


class TestSymmetry:
    @given(data=st.data())
    @SETTINGS
    def test_cayley_distance_is_symmetric(self, lps, data):
        """Undirected Cayley graphs: d(u,v) == d(v,u) through the oracle
        (exercises the inverse-word path in the translator)."""
        topo, tr, _ = lps
        oracle = CayleyOracle(topo.graph, tr, self_check=False)
        n = topo.n_routers
        u = data.draw(st.integers(0, n - 1), label="u")
        v = data.draw(st.integers(0, n - 1), label="v")
        assert oracle.distance(u, v) == oracle.distance(v, u)


class TestLRUEviction:
    @given(data=st.data())
    @SETTINGS
    def test_eviction_never_changes_answers(self, paley, data):
        """A row cache of 2 under a random access sequence must answer
        exactly like an unbounded cache — eviction is a perf knob, never
        a correctness one."""
        topo, tr, dense = paley
        tiny = CayleyOracle(topo.graph, tr, row_cache=2, self_check=False)
        n = topo.n_routers
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=8,
                max_size=24,
            ),
            label="access sequence",
        )
        for u, v in pairs:
            assert tiny.distance(u, v) == dense.distance(u, v)
            if u != v:
                np.testing.assert_array_equal(
                    tiny.min_next_hops(u, v), dense.min_next_hops(u, v)
                )
        assert len(tiny.cached_row_ids()) <= 2

    @given(data=st.data())
    @SETTINGS
    def test_landmark_eviction_never_changes_answers(self, dragonfly, data):
        topo, dense = dragonfly
        tiny = LandmarkOracle(topo.graph, landmarks=4, row_cache=2)
        n = topo.n_routers
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=8,
                max_size=24,
            ),
            label="access sequence",
        )
        for u, v in pairs:
            assert tiny.distance(u, v) == dense.distance(u, v)
        assert len(tiny.cached_row_ids()) <= 2


class TestLandmarkAdmissibility:
    @given(data=st.data())
    @SETTINGS
    def test_upper_bound_admissible_vs_exact_bfs(self, dragonfly, data):
        topo, dense = dragonfly
        lm = LandmarkOracle(topo.graph, landmarks=6)
        n = topo.n_routers
        u = data.draw(st.integers(0, n - 1), label="u")
        v = data.draw(st.integers(0, n - 1), label="v")
        ub = int(lm.upper_bound(np.array([u]), np.array([v]))[0])
        exact = dense.distance(u, v)
        assert ub >= exact
        # Exact rows are exact regardless of the bound.
        assert lm.distance(u, v) == exact
