"""Tests for repro.nt.modular."""

import pytest

from repro.nt.modular import (
    crt_pair,
    legendre_symbol,
    mod_inverse,
    solve_sum_of_two_squares_plus_one,
    sqrt_mod,
)
from repro.nt.primes import primes_below


class TestModInverse:
    def test_basic(self):
        assert mod_inverse(3, 7) == 5  # 3*5 = 15 = 1 (mod 7)
        assert mod_inverse(2, 11) == 6

    def test_all_invertible_mod_prime(self):
        p = 23
        for a in range(1, p):
            assert a * mod_inverse(a, p) % p == 1

    def test_not_invertible(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 9)

    def test_negative_input(self):
        assert (-3) * mod_inverse(-3, 7) % 7 == 1


class TestLegendreSymbol:
    def test_known_values(self):
        # Squares mod 7: 1, 2, 4.
        assert legendre_symbol(2, 7) == 1
        assert legendre_symbol(3, 7) == -1
        assert legendre_symbol(0, 7) == 0

    def test_paper_instances(self):
        # Table I group selection: +1 -> PSL, -1 -> PGL.
        assert legendre_symbol(11, 7) == 1
        assert legendre_symbol(23, 11) == 1
        assert legendre_symbol(53, 17) == 1
        assert legendre_symbol(71, 17) == -1
        assert legendre_symbol(89, 19) == -1
        assert legendre_symbol(23, 13) == 1  # the simulated LPS(23,13)
        assert legendre_symbol(3, 5) == -1  # Example 1

    def test_multiplicativity(self):
        p = 31
        for a in range(1, p):
            for b in range(1, p):
                assert (
                    legendre_symbol(a * b, p)
                    == legendre_symbol(a, p) * legendre_symbol(b, p)
                )

    def test_euler_criterion_consistency(self):
        p = 41
        squares = {x * x % p for x in range(1, p)}
        for a in range(1, p):
            expect = 1 if a in squares else -1
            assert legendre_symbol(a, p) == expect

    def test_rejects_composite_modulus(self):
        with pytest.raises(ValueError):
            legendre_symbol(2, 15)


class TestSqrtMod:
    @pytest.mark.parametrize("p", [3, 5, 7, 11, 13, 17, 97, 101])
    def test_roundtrip(self, p):
        for a in range(p):
            r = sqrt_mod(a, p)
            if legendre_symbol(a, p) == -1:
                assert r is None
            else:
                assert r is not None and r * r % p == a % p

    def test_zero(self):
        assert sqrt_mod(0, 13) == 0


class TestSumOfTwoSquaresPlusOne:
    def test_paper_example(self):
        # Example 1 uses (x, y) = (0, 2) for q = 5.
        assert solve_sum_of_two_squares_plus_one(5) == (0, 2)

    @pytest.mark.parametrize("q", [int(q) for q in primes_below(200) if q > 2])
    def test_solution_is_valid(self, q):
        x, y = solve_sum_of_two_squares_plus_one(q)
        assert (x * x + y * y + 1) % q == 0

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            solve_sum_of_two_squares_plus_one(15)


class TestCRT:
    def test_basic(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            crt_pair(1, 6, 2, 9)
