"""Statistical differential harness: event engine vs batched engine.

The batch-synchronous backend (``repro.sim.batched``) is *not*
event-for-event identical to the discrete-event reference — equal seeds
give identical injections (same Poisson gaps, same destinations, pinned by
``tests/test_property_traffic.py``) but routing tie-break streams differ
and queueing is quantized to the cycle.  What must hold is **statistical
agreement**: over a seeded sample of topology family x routing policy x
traffic pattern x offered load configurations, the two engines' headline
metrics agree within the declared per-policy tolerances:

* ``delivered`` — exact (both engines deliver every injected packet, and
  injection counts are bit-identical);
* ``mean_hops`` — tight for minimal (same candidate distribution), looser
  for the adaptive policies whose Valiant decisions read queue state the
  batched engine approximates in whole cycles;
* ``mean_latency_ns`` — the uncongested pipeline is exact; queueing is
  quantized to the serialization cycle;
* ``throughput_gbps`` — driven by the makespan, i.e. one tail packet, so
  it carries the most sampling noise.

The tolerances are documented and justified in ``docs/performance.md``
(they sit at roughly 2x the worst deviation observed over a denser
calibration grid, and within the event engine's own seed-to-seed spread).
Loads are sampled in [0.15, 0.7]: beyond ~0.7 the paper's networks are
saturated and the makespan of these deliberately small test instances
degenerates to a single-packet tail race that neither engine claims to
pin.  Any change to either engine must keep this whole sampled space
green, not one hand-picked cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import build_synthetic_sim
from repro.topology import (
    build_canonical_dragonfly,
    build_lps,
    build_paley,
    build_slimfly,
)

_FAMILIES = {
    "lps": lambda: build_lps(3, 5),  # 120 routers, radix 4
    "slimfly": lambda: build_slimfly(5),  # 50 routers, radix 7
    "dragonfly": lambda: build_canonical_dragonfly(6),  # 42 routers
    "paley": lambda: build_paley(29),  # 29 routers, radix 14
}
_ROUTINGS = ("minimal", "valiant", "ugal", "ugal-g")
_PATTERNS = ("random", "shuffle", "reverse", "transpose", "tornado")

#: Relative tolerance per (policy, metric); ``delivered`` is always exact.
#: Justification and calibration data: docs/performance.md.
TOLERANCES = {
    "minimal": {"mean_latency_ns": 0.10, "mean_hops": 0.02,
                "throughput_gbps": 0.12},
    "valiant": {"mean_latency_ns": 0.12, "mean_hops": 0.10,
                "throughput_gbps": 0.18},
    "ugal": {"mean_latency_ns": 0.15, "mean_hops": 0.12,
             "throughput_gbps": 0.18},
    "ugal-g": {"mean_latency_ns": 0.12, "mean_hops": 0.08,
               "throughput_gbps": 0.15},
}

_N_SAMPLES = 28


def _sample_configs(n=_N_SAMPLES, seed=20260728):
    """Deterministically sample ``n`` event-vs-batched configurations.

    Stratified over routing x family (round-robin) so every policy and
    every topology family appears several times regardless of ``n``;
    pattern, load, seed, and concentration are drawn uniformly.
    """
    rng = np.random.default_rng(seed)
    families = sorted(_FAMILIES)
    configs = []
    for i in range(n):
        configs.append(
            {
                "family": families[i % len(families)],
                "routing": _ROUTINGS[(i // len(families)) % len(_ROUTINGS)],
                "pattern": _PATTERNS[int(rng.integers(len(_PATTERNS)))],
                "load": float(np.round(0.15 + 0.55 * rng.random(), 2)),
                "concentration": int((1, 2, 4)[int(rng.integers(3))]),
                "packets_per_rank": int(rng.integers(6, 11)),
                "seed": int(rng.integers(10_000)),
            }
        )
    return configs


def _config_id(cfg):
    return (
        f"{cfg['family']}-{cfg['routing']}-{cfg['pattern']}"
        f"-l{cfg['load']}-c{cfg['concentration']}-s{cfg['seed']}"
    )


@pytest.fixture(scope="module")
def topos():
    return {name: build() for name, build in _FAMILIES.items()}


def _run_one(topos, cfg, backend):
    topo = topos[cfg["family"]]
    n_eps = topo.n_routers * cfg["concentration"]
    # Largest power of two that fits (bit-permutation patterns need 2^b
    # ranks), capped to bound runtime.
    n_ranks = min(64, 1 << (n_eps.bit_length() - 1))
    net = build_synthetic_sim(
        topo,
        cfg["routing"],
        cfg["pattern"],
        cfg["load"],
        concentration=cfg["concentration"],
        n_ranks=n_ranks,
        packets_per_rank=cfg["packets_per_rank"],
        seed=cfg["seed"],
        backend=backend,
    )
    return net.run()


class TestDifferential:
    @pytest.mark.parametrize("cfg", _sample_configs(), ids=_config_id)
    def test_batched_matches_event_within_tolerance(self, topos, cfg):
        ev = _run_one(topos, cfg, "event")
        bt = _run_one(topos, cfg, "batched")
        assert ev.n_injected > 0, "degenerate sample: nothing ran"

        # Injection is bit-identical: same pre-drawn gaps and destinations.
        assert bt.n_injected == ev.n_injected
        assert bt.t_first_inject == ev.t_first_inject

        se, sb = ev.summary(), bt.summary()
        assert sb["delivered"] == se["delivered"] == ev.n_injected

        tol = TOLERANCES[cfg["routing"]]
        for metric, rel_tol in tol.items():
            a, b = se[metric], sb[metric]
            assert a > 0, (metric, a)
            rel = abs(b - a) / a
            assert rel <= rel_tol, (
                f"{metric}: event={a:.2f} batched={b:.2f} "
                f"rel={rel:.3f} > tol={rel_tol} in {_config_id(cfg)}"
            )

    def test_sampler_is_stable_and_covers_the_axes(self):
        # Same seed => same configs (a divergence must be reproducible)...
        assert _sample_configs() == _sample_configs()
        cfgs = _sample_configs()
        # ... the acceptance floor holds ...
        assert len(cfgs) >= 24
        # ... and the sample genuinely spans every family and policy.
        assert {c["family"] for c in cfgs} == set(_FAMILIES)
        assert {c["routing"] for c in cfgs} == set(_ROUTINGS)
        # Patterns cover both stochastic and deterministic kinds.
        kinds = {c["pattern"] for c in cfgs}
        assert "random" in kinds and len(kinds) >= 3

    def test_batched_is_deterministic(self, topos):
        cfg = _sample_configs()[0]
        a = _run_one(topos, cfg, "batched")
        b = _run_one(topos, cfg, "batched")
        assert a.latencies_ns == b.latencies_ns
        assert a.hops == b.hops
        assert a.t_last_delivery == b.t_last_delivery
