"""Statistical differential harness: event engine vs batched engine.

The batch-synchronous backend (``repro.sim.batched``) is *not*
event-for-event identical to the discrete-event reference — equal seeds
give identical injections (same Poisson gaps, same destinations, pinned by
``tests/test_property_traffic.py``) but routing tie-break streams differ
and queueing is quantized to the cycle.  What must hold is **statistical
agreement**: over a seeded sample of topology family x routing policy x
traffic pattern x offered load configurations, the two engines' headline
metrics agree within the declared per-policy tolerances:

* ``delivered`` — exact (both engines deliver every injected packet, and
  injection counts are bit-identical);
* ``mean_hops`` — tight for minimal (same candidate distribution), looser
  for the adaptive policies whose Valiant decisions read queue state the
  batched engine approximates in whole cycles;
* ``mean_latency_ns`` — the uncongested pipeline is exact; queueing is
  quantized to the serialization cycle;
* ``throughput_gbps`` — driven by the makespan, i.e. one tail packet, so
  it carries the most sampling noise.

The tolerances are documented and justified in ``docs/performance.md``
(they sit at roughly 2x the worst deviation observed over a denser
calibration grid, and within the event engine's own seed-to-seed spread).
Loads are sampled in [0.15, 0.7]: beyond ~0.7 the paper's networks are
saturated and the makespan of these deliberately small test instances
degenerates to a single-packet tail race that neither engine claims to
pin.  Any change to either engine must keep this whole sampled space
green, not one hand-picked cell.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments.common import build_synthetic_sim
from repro.routing import RoutingTables, make_routing
from repro.sim import ChannelConfig, SimConfig
from repro.sim.faults import FaultSchedule
from repro.topology import (
    build_canonical_dragonfly,
    build_lps,
    build_paley,
    build_slimfly,
)
from repro.workloads import (
    CollectiveMotif,
    FFTMotif,
    Halo3D26Motif,
    Sweep3DMotif,
    run_collective,
    run_motif,
)
from repro.workloads.collectives import ALGORITHMS, COLLECTIVES

# The whole module runs in the dedicated CI matrix job (see ci.yml); the
# shard variable lets that job split the config list across matrix entries
# without changing what runs locally (no variable = everything).
pytestmark = pytest.mark.differential


def _shard(configs):
    """Slice a config list for the CI matrix: ``REPRO_DIFF_SHARD=i/n``."""
    spec = os.environ.get("REPRO_DIFF_SHARD")
    if not spec:
        return configs
    i, n = (int(part) for part in spec.split("/"))
    return [c for j, c in enumerate(configs) if j % n == i]

_FAMILIES = {
    "lps": lambda: build_lps(3, 5),  # 120 routers, radix 4
    "slimfly": lambda: build_slimfly(5),  # 50 routers, radix 7
    "dragonfly": lambda: build_canonical_dragonfly(6),  # 42 routers
    "paley": lambda: build_paley(29),  # 29 routers, radix 14
}
_ROUTINGS = ("minimal", "valiant", "ugal", "ugal-g")
_PATTERNS = ("random", "shuffle", "reverse", "transpose", "tornado")

#: Relative tolerance per (policy, metric); ``delivered`` is always exact.
#: Justification and calibration data: docs/performance.md.
TOLERANCES = {
    "minimal": {"mean_latency_ns": 0.10, "mean_hops": 0.02,
                "throughput_gbps": 0.12},
    "valiant": {"mean_latency_ns": 0.12, "mean_hops": 0.10,
                "throughput_gbps": 0.18},
    "ugal": {"mean_latency_ns": 0.15, "mean_hops": 0.12,
             "throughput_gbps": 0.18},
    "ugal-g": {"mean_latency_ns": 0.12, "mean_hops": 0.08,
               "throughput_gbps": 0.15},
}

_N_SAMPLES = 28


def _sample_configs(n=_N_SAMPLES, seed=20260728):
    """Deterministically sample ``n`` event-vs-batched configurations.

    Stratified over routing x family (round-robin) so every policy and
    every topology family appears several times regardless of ``n``;
    pattern, load, seed, and concentration are drawn uniformly.
    """
    rng = np.random.default_rng(seed)
    families = sorted(_FAMILIES)
    configs = []
    for i in range(n):
        configs.append(
            {
                "family": families[i % len(families)],
                "routing": _ROUTINGS[(i // len(families)) % len(_ROUTINGS)],
                "pattern": _PATTERNS[int(rng.integers(len(_PATTERNS)))],
                "load": float(np.round(0.15 + 0.55 * rng.random(), 2)),
                "concentration": int((1, 2, 4)[int(rng.integers(3))]),
                "packets_per_rank": int(rng.integers(6, 11)),
                "seed": int(rng.integers(10_000)),
            }
        )
    return configs


def _config_id(cfg):
    return (
        f"{cfg['family']}-{cfg['routing']}-{cfg['pattern']}"
        f"-l{cfg['load']}-c{cfg['concentration']}-s{cfg['seed']}"
    )


@pytest.fixture(scope="module")
def topos():
    return {name: build() for name, build in _FAMILIES.items()}


def _run_one(topos, cfg, backend):
    topo = topos[cfg["family"]]
    n_eps = topo.n_routers * cfg["concentration"]
    # Largest power of two that fits (bit-permutation patterns need 2^b
    # ranks), capped to bound runtime.
    n_ranks = min(64, 1 << (n_eps.bit_length() - 1))
    net = build_synthetic_sim(
        topo,
        cfg["routing"],
        cfg["pattern"],
        cfg["load"],
        concentration=cfg["concentration"],
        n_ranks=n_ranks,
        packets_per_rank=cfg["packets_per_rank"],
        seed=cfg["seed"],
        backend=backend,
    )
    return net.run()


class TestDifferential:
    @pytest.mark.parametrize("cfg", _shard(_sample_configs()), ids=_config_id)
    def test_batched_matches_event_within_tolerance(self, topos, cfg):
        ev = _run_one(topos, cfg, "event")
        bt = _run_one(topos, cfg, "batched")
        assert ev.n_injected > 0, "degenerate sample: nothing ran"

        # Injection is bit-identical: same pre-drawn gaps and destinations.
        assert bt.n_injected == ev.n_injected
        assert bt.t_first_inject == ev.t_first_inject

        se, sb = ev.summary(), bt.summary()
        assert sb["delivered"] == se["delivered"] == ev.n_injected

        tol = TOLERANCES[cfg["routing"]]
        for metric, rel_tol in tol.items():
            a, b = se[metric], sb[metric]
            assert a > 0, (metric, a)
            rel = abs(b - a) / a
            assert rel <= rel_tol, (
                f"{metric}: event={a:.2f} batched={b:.2f} "
                f"rel={rel:.3f} > tol={rel_tol} in {_config_id(cfg)}"
            )

    def test_sampler_is_stable_and_covers_the_axes(self):
        # Same seed => same configs (a divergence must be reproducible)...
        assert _sample_configs() == _sample_configs()
        cfgs = _sample_configs()
        # ... the acceptance floor holds ...
        assert len(cfgs) >= 24
        # ... and the sample genuinely spans every family and policy.
        assert {c["family"] for c in cfgs} == set(_FAMILIES)
        assert {c["routing"] for c in cfgs} == set(_ROUTINGS)
        # Patterns cover both stochastic and deterministic kinds.
        kinds = {c["pattern"] for c in cfgs}
        assert "random" in kinds and len(kinds) >= 3

    def test_batched_is_deterministic(self, topos):
        cfg = _sample_configs()[0]
        a = _run_one(topos, cfg, "batched")
        b = _run_one(topos, cfg, "batched")
        assert a.latencies_ns == b.latencies_ns
        assert a.hops == b.hops
        assert a.t_last_delivery == b.t_last_delivery


# ---------------------------------------------------------------------------
# Closed-loop motif workloads: event DAG runner vs batched frontier runner
# ---------------------------------------------------------------------------
_MOTIF_KINDS = {
    "fft": lambda: FFTMotif((4, 4)),
    "halo3d": lambda: Halo3D26Motif((3, 3, 3), iterations=2),
    "sweep3d": lambda: Sweep3DMotif((4, 4), sweeps=2),
}

#: Relative tolerance per (policy, metric) for motif runs; ``delivered``
#: is always exact.  Justification and calibration: docs/performance.md
#: (the motif rows of the per-scenario tolerance table) — roughly 2x the
#: worst deviation over a 24-config calibration grid.
MOTIF_TOLERANCES = {
    "minimal": {"mean_latency_ns": 0.04, "mean_hops": 0.02,
                "makespan_ns": 0.10},
    "valiant": {"mean_latency_ns": 0.10, "mean_hops": 0.12,
                "makespan_ns": 0.20},
    "ugal": {"mean_latency_ns": 0.08, "mean_hops": 0.26,
             "makespan_ns": 0.16},
    "ugal-g": {"mean_latency_ns": 0.06, "mean_hops": 0.13,
               "makespan_ns": 0.10},
}


def _motif_configs():
    """8 stratified (motif, routing, family, seed) combinations."""
    families = sorted(_FAMILIES)
    kinds = sorted(_MOTIF_KINDS)
    configs = []
    for i in range(8):
        configs.append(
            {
                "motif": kinds[i % len(kinds)],
                "routing": _ROUTINGS[i % len(_ROUTINGS)],
                "family": families[(i // len(kinds)) % len(families)],
                "seed": 11 + 3 * i,
            }
        )
    return configs


def _motif_id(cfg):
    return f"{cfg['motif']}-{cfg['routing']}-{cfg['family']}-s{cfg['seed']}"


class TestMotifDifferential:
    """Motif DAGs agree across engines within the documented tolerances."""

    def _run(self, topos, cfg, backend):
        topo = topos[cfg["family"]]
        tables = RoutingTables(topo.graph)
        policy = make_routing(cfg["routing"], tables, seed=cfg["seed"])
        return run_motif(
            topo, policy, _MOTIF_KINDS[cfg["motif"]](),
            SimConfig(concentration=2),
            placement_seed=cfg["seed"] + 1, backend=backend,
        )

    @pytest.mark.parametrize("cfg", _shard(_motif_configs()), ids=_motif_id)
    def test_batched_motif_matches_event_within_tolerance(self, topos, cfg):
        ev = self._run(topos, cfg, "event")
        bt = self._run(topos, cfg, "batched")
        # The DAG drains identically: same messages, all delivered.
        assert bt["n_messages"] == ev["n_messages"]
        assert bt["delivered"] == ev["delivered"]
        assert bt["delivered_fraction"] == ev["delivered_fraction"] == 1.0
        tol = MOTIF_TOLERANCES[cfg["routing"]]
        for metric, rel_tol in tol.items():
            a, b = ev[metric], bt[metric]
            assert a > 0, (metric, a)
            rel = abs(b - a) / a
            assert rel <= rel_tol, (
                f"{metric}: event={a:.2f} batched={b:.2f} "
                f"rel={rel:.3f} > tol={rel_tol} in {_motif_id(cfg)}"
            )

    def test_batched_motif_is_deterministic(self, topos):
        cfg = _motif_configs()[0]
        a = self._run(topos, cfg, "batched")
        b = self._run(topos, cfg, "batched")
        assert a == b

    def test_motif_sampler_covers_the_axes(self):
        cfgs = _motif_configs()
        assert len(cfgs) >= 8
        assert {c["motif"] for c in cfgs} == set(_MOTIF_KINDS)
        assert {c["routing"] for c in cfgs} == set(_ROUTINGS)
        assert len({c["family"] for c in cfgs}) >= 3


# ---------------------------------------------------------------------------
# Mid-run fault schedules: event handler path vs batched epoch boundaries
# ---------------------------------------------------------------------------
#: Per-scenario fault tolerances (same table in docs/performance.md):
#: delivered fraction is compared absolutely (a drop is a discrete event —
#: the engines disagree by at most a few packets per failed port, the
#: documented mid-flight-kill approximation), mean latency relatively.
FAULT_TOLERANCES = {"delivered_fraction_abs": 0.04, "mean_latency_ns": 0.10}


def _fault_configs():
    """8 stratified (family, routing, fraction, recovery, seed) combos."""
    families = sorted(_FAMILIES)
    configs = []
    for i in range(8):
        configs.append(
            {
                "family": families[i % len(families)],
                "routing": _ROUTINGS[i % len(_ROUTINGS)],
                "fraction": (0.05, 0.12)[i % 2],
                "recover": i % 3 != 0,
                "load": 0.45,
                "packets_per_rank": 15,
                "seed": 5 + 7 * i,
            }
        )
    return configs


def _fault_id(cfg):
    return (
        f"{cfg['family']}-{cfg['routing']}-f{cfg['fraction']}"
        f"-{'rec' if cfg['recover'] else 'norec'}-s{cfg['seed']}"
    )


class TestFaultedDifferential:
    """Faulted open-loop runs agree across engines within tolerances."""

    def _run(self, topos, cfg, backend):
        topo = topos[cfg["family"]]
        n_eps = topo.n_routers * 2
        n_ranks = min(64, 1 << (n_eps.bit_length() - 1))
        ppr = cfg["packets_per_rank"]
        # Derive the injection horizon from the config (not hardcoded
        # defaults), so the fault window keeps landing mid-run even if
        # SimConfig's packet size or bandwidth ever change.
        sim_cfg = SimConfig(concentration=2)
        horizon = (
            ppr * sim_cfg.packet_bytes / (cfg["load"] * sim_cfg.bytes_per_ns)
        )
        schedule = FaultSchedule.random_link_faults(
            topo.graph,
            cfg["fraction"],
            t_fail=0.25 * horizon,
            seed=cfg["seed"] * 13 + 1,
            t_recover=0.75 * horizon if cfg["recover"] else None,
        )
        net = build_synthetic_sim(
            topo, cfg["routing"], "random", cfg["load"], concentration=2,
            n_ranks=n_ranks, packets_per_rank=ppr, seed=cfg["seed"],
            faults=schedule, backend=backend,
        )
        return net.run()

    @pytest.mark.parametrize("cfg", _shard(_fault_configs()), ids=_fault_id)
    def test_batched_faults_match_event_within_tolerance(self, topos, cfg):
        ev = self._run(topos, cfg, "event")
        bt = self._run(topos, cfg, "batched")
        assert ev.n_injected == bt.n_injected > 0

        # Packet conservation on both engines: every injected packet is
        # delivered or accounted to a fault, never lost silently.
        se, sb = ev.summary(), bt.summary()
        assert se["delivered"] + ev.n_dropped == ev.n_injected
        assert sb["delivered"] + bt.n_dropped == bt.n_injected

        # Both engines apply every schedule event (epoch parity).
        assert len(bt.epochs) == len(ev.epochs)
        assert [e["label"] for e in bt.epochs] == [
            e["label"] for e in ev.epochs
        ]

        dd = abs(se["delivered_fraction"] - sb["delivered_fraction"])
        assert dd <= FAULT_TOLERANCES["delivered_fraction_abs"], (
            f"delivered_fraction: event={se['delivered_fraction']:.4f} "
            f"batched={sb['delivered_fraction']:.4f} in {_fault_id(cfg)}"
        )
        a = se["mean_latency_ns"]
        b = sb["mean_latency_ns"]
        rel = abs(b - a) / a
        assert rel <= FAULT_TOLERANCES["mean_latency_ns"], (
            f"mean_latency_ns: event={a:.1f} batched={b:.1f} "
            f"rel={rel:.3f} in {_fault_id(cfg)}"
        )

    def test_batched_faulted_is_deterministic(self, topos):
        cfg = _fault_configs()[0]
        a = self._run(topos, cfg, "batched")
        b = self._run(topos, cfg, "batched")
        assert a.latencies_ns == b.latencies_ns
        assert a.drops == b.drops
        assert a.epochs == b.epochs

    def test_fault_sampler_covers_the_axes(self):
        cfgs = _fault_configs()
        assert len(cfgs) >= 8
        assert {c["family"] for c in cfgs} == set(_FAMILIES)
        assert {c["routing"] for c in cfgs} == set(_ROUTINGS)
        assert {c["recover"] for c in cfgs} == {True, False}


# ---------------------------------------------------------------------------
# Chunk-level collectives: event DAG runner vs batched frontier runner
# ---------------------------------------------------------------------------
#: Relative tolerance per (policy, metric) for collective runs (same table
#: in docs/performance.md); ``delivered`` and the chunk-ownership end
#: state are always exact.  Calibrated at roughly 2x the worst deviation
#: over the stratified config grid below plus a denser
#: collective x algorithm x rank-count sweep on the LPS family (worst
#: observed: 10.3% makespan under valiant, 9.1% mean hops under ugal,
#: 6.1% makespan under minimal).  Makespan is a single-chain tail, so it
#: carries more noise than the per-message means; ``chunk_done_mean_ns``
#: averages per-chunk completion instants, sitting between the two.
COLLECTIVE_TOLERANCES = {
    "minimal": {"mean_latency_ns": 0.06, "mean_hops": 0.02,
                "makespan_ns": 0.14, "chunk_done_mean_ns": 0.10},
    "valiant": {"mean_latency_ns": 0.06, "mean_hops": 0.06,
                "makespan_ns": 0.22, "chunk_done_mean_ns": 0.14},
    "ugal": {"mean_latency_ns": 0.06, "mean_hops": 0.20,
             "makespan_ns": 0.16, "chunk_done_mean_ns": 0.10},
    "ugal-g": {"mean_latency_ns": 0.05, "mean_hops": 0.06,
               "makespan_ns": 0.10, "chunk_done_mean_ns": 0.08},
}


def _collective_configs():
    """8 stratified (collective, algorithm, family, routing, p) combos.

    ``i % 3`` x ``i % 4`` walks all eight distinct (collective,
    algorithm) pairs; families, routings, and both rank counts (one a
    power of two, one not — the fold path) rotate underneath.
    """
    families = sorted(_FAMILIES)
    colls = sorted(COLLECTIVES)
    algos = sorted(ALGORITHMS)
    configs = []
    for i in range(8):
        configs.append(
            {
                "collective": colls[i % 3],
                "algorithm": algos[i % 4],
                "family": families[(i // 2) % 4],
                "routing": _ROUTINGS[i % 4],
                "p": (12, 16)[i % 2],
                "seed": 17 + 5 * i,
            }
        )
    return configs


def _collective_id(cfg):
    return (
        f"{cfg['collective']}-{cfg['algorithm']}-{cfg['family']}"
        f"-{cfg['routing']}-p{cfg['p']}-s{cfg['seed']}"
    )


class TestCollectiveDifferential:
    """Collective schedules agree across engines within tolerances."""

    def _run(self, topos, cfg, backend):
        topo = topos[cfg["family"]]
        tables = RoutingTables(topo.graph)
        policy = make_routing(cfg["routing"], tables, seed=cfg["seed"])
        return run_collective(
            topo, policy,
            CollectiveMotif(
                cfg["collective"], cfg["algorithm"], cfg["p"],
                total_bytes=1 << 13,
            ),
            SimConfig(concentration=2),
            placement_seed=cfg["seed"] + 1, backend=backend,
        )

    @pytest.mark.parametrize(
        "cfg", _shard(_collective_configs()), ids=_collective_id
    )
    def test_batched_collective_matches_event_within_tolerance(
        self, topos, cfg
    ):
        ev = self._run(topos, cfg, "event")
        bt = self._run(topos, cfg, "batched")
        # The DAG drains identically: same messages, all delivered, and
        # the chunk-ownership end state matches exactly — both engines
        # finish the *same* collective, not merely similar traffic.
        assert bt["n_messages"] == ev["n_messages"]
        assert bt["delivered"] == ev["delivered"] == ev["n_messages"]
        assert bt["final_owners"] == ev["final_owners"]
        assert bt["ownership_complete"] and ev["ownership_complete"]
        # Exact-boundary drain on both engines: the last chunk completes
        # at the makespan itself, never before, never dropped.
        for out in (ev, bt):
            assert out["chunk_done_max_ns"] == out["makespan_ns"]
        tol = COLLECTIVE_TOLERANCES[cfg["routing"]]
        for metric, rel_tol in tol.items():
            a, b = ev[metric], bt[metric]
            assert a > 0, (metric, a)
            rel = abs(b - a) / a
            assert rel <= rel_tol, (
                f"{metric}: event={a:.2f} batched={b:.2f} "
                f"rel={rel:.3f} > tol={rel_tol} in {_collective_id(cfg)}"
            )

    def test_batched_collective_is_deterministic(self, topos):
        cfg = _collective_configs()[0]
        a = self._run(topos, cfg, "batched")
        b = self._run(topos, cfg, "batched")
        assert a == b

    def test_collective_sampler_covers_the_axes(self):
        cfgs = _collective_configs()
        assert len(cfgs) >= 8
        assert {c["collective"] for c in cfgs} == set(COLLECTIVES)
        assert {c["algorithm"] for c in cfgs} == set(ALGORITHMS)
        assert {c["routing"] for c in cfgs} == set(_ROUTINGS)
        assert len({c["family"] for c in cfgs}) >= 3
        # Both the power-of-two path and the fold path are sampled.
        assert any(c["p"] & (c["p"] - 1) == 0 for c in cfgs)
        assert any(c["p"] & (c["p"] - 1) != 0 for c in cfgs)


# ---------------------------------------------------------------------------
# Congestion realism: credit/backpressure finite buffers and lossy links
# ---------------------------------------------------------------------------
#: Per-policy tolerances for finite-buffer open-loop runs (same table in
#: docs/performance.md).  Calibrated at roughly 2x the worst deviation
#: over a 12-config family x routing x buffer-size x load grid (worst
#: observed: 13.1% mean latency under minimal at one-packet buffers —
#: backpressure stalls quantize to whole cycles — 6.4% throughput under
#: valiant; minimal mean hops are exact, the policies' candidate sets are
#: untouched by buffering).
CONGESTION_TOLERANCES = {
    "minimal": {"mean_latency_ns": 0.26, "mean_hops": 0.01,
                "throughput_gbps": 0.05},
    "valiant": {"mean_latency_ns": 0.08, "mean_hops": 0.06,
                "throughput_gbps": 0.14},
    "ugal": {"mean_latency_ns": 0.10, "mean_hops": 0.06,
             "throughput_gbps": 0.08},
}

#: Lossy-link tolerances under *minimal* routing, where the differential
#: is strongest: equal seeds give equal (packet key, hop) channel-draw
#: sequences on both engines, so drop/retransmit accounting is asserted
#: **identically**, not within a band; only the latency overlay is
#: tolerance-checked (worst observed 3.6% alone, 5.1% with finite
#: buffers stacked on top).
LOSSY_TOLERANCES = {"mean_latency_ns": 0.08, "throughput_gbps": 0.02}
LOSSY_FINITE_TOLERANCES = {"mean_latency_ns": 0.12, "throughput_gbps": 0.02}

#: Adaptive policies take different Valiant detours per engine, so their
#: per-packet (key, hop) draw sequences — and with them the exact drop
#: sets — legitimately diverge; those configs get banded checks only
#: (worst observed: 3.1% latency, identical delivered fractions).
LOSSY_ADAPTIVE_TOLERANCES = {
    "mean_latency_ns": 0.08, "delivered_fraction_abs": 0.02,
}


def _congestion_configs():
    """12 stratified finite-buffer combos: family x routing x buffer x load."""
    families = sorted(_FAMILIES)
    routings = ("minimal", "valiant", "ugal")
    configs = []
    for i in range(12):
        configs.append(
            {
                "family": families[i % 4],
                "routing": routings[i % 3],
                "buffer_packets": (1, 2, 4)[i % 3],
                "load": (0.45, 0.6)[i % 2],
                "seed": 5 + 7 * i,
            }
        )
    return configs


def _lossy_configs():
    """12 minimal-routing lossy combos (exact-accounting eligible) ...

    ... plus 4 with finite buffers stacked on top and 4 adaptive-routing
    combos; ``kind`` routes each to its check.
    """
    families = sorted(_FAMILIES)
    configs = []
    for i in range(12):
        configs.append(
            {
                "kind": "exact",
                "family": families[i % 4],
                "routing": "minimal",
                "loss_prob": (0.02, 0.08)[i % 2],
                "max_attempts": (1, 3)[(i // 2) % 2],
                "finite": False,
                "seed": 3 + 11 * i,
            }
        )
    for i in range(4):
        configs.append(
            {
                "kind": "exact",
                "family": families[i % 4],
                "routing": "minimal",
                "loss_prob": 0.04,
                "max_attempts": 2,
                "finite": True,
                "seed": 29 + 13 * i,
            }
        )
    for i in range(4):
        configs.append(
            {
                "kind": "adaptive",
                "family": families[i % 4],
                "routing": ("valiant", "ugal")[i % 2],
                "loss_prob": 0.03,
                "max_attempts": 3,
                "finite": False,
                "seed": 41 + 17 * i,
            }
        )
    return configs


def _congestion_id(cfg):
    return (
        f"{cfg['family']}-{cfg['routing']}-b{cfg['buffer_packets']}"
        f"-l{cfg['load']}-s{cfg['seed']}"
    )


def _lossy_id(cfg):
    return (
        f"{cfg['family']}-{cfg['routing']}-p{cfg['loss_prob']}"
        f"-a{cfg['max_attempts']}{'-fin' if cfg['finite'] else ''}"
        f"-s{cfg['seed']}"
    )


class TestCongestionDifferential:
    """Finite-buffer open-loop runs agree across engines within tolerances."""

    def _run(self, topos, cfg, backend):
        topo = topos[cfg["family"]]
        n_eps = topo.n_routers * 2
        n_ranks = min(64, 1 << (n_eps.bit_length() - 1))
        sim_cfg = SimConfig(
            concentration=2,
            finite_buffers=True,
            buffer_bytes=cfg["buffer_packets"] * 4096,
        )
        net = build_synthetic_sim(
            topo, cfg["routing"], "random", cfg["load"], concentration=2,
            n_ranks=n_ranks, packets_per_rank=10, seed=cfg["seed"],
            config=sim_cfg, backend=backend,
        )
        stats = net.run()
        # Hold-until-departure invariant: a completed run leaves every
        # credit returned on both engines.
        assert net._buf_used is not None and int(net._buf_used.sum()) == 0
        return stats

    @pytest.mark.parametrize(
        "cfg", _shard(_congestion_configs()), ids=_congestion_id
    )
    def test_batched_finite_buffers_match_event_within_tolerance(
        self, topos, cfg
    ):
        ev = self._run(topos, cfg, "event")
        bt = self._run(topos, cfg, "batched")
        assert bt.n_injected == ev.n_injected > 0
        se, sb = ev.summary(), bt.summary()
        assert sb["delivered"] == se["delivered"] == ev.n_injected
        tol = CONGESTION_TOLERANCES[cfg["routing"]]
        for metric, rel_tol in tol.items():
            a, b = se[metric], sb[metric]
            assert a > 0, (metric, a)
            rel = abs(b - a) / a
            assert rel <= rel_tol, (
                f"{metric}: event={a:.2f} batched={b:.2f} "
                f"rel={rel:.3f} > tol={rel_tol} in {_congestion_id(cfg)}"
            )

    def test_batched_finite_buffers_deterministic(self, topos):
        cfg = _congestion_configs()[0]
        a = self._run(topos, cfg, "batched")
        b = self._run(topos, cfg, "batched")
        assert a.latencies_ns == b.latencies_ns
        assert a.hops == b.hops

    def test_congestion_sampler_covers_the_axes(self):
        cfgs = _congestion_configs()
        assert len(cfgs) >= 12
        assert {c["family"] for c in cfgs} == set(_FAMILIES)
        assert {c["routing"] for c in cfgs} == {"minimal", "valiant", "ugal"}
        assert {c["buffer_packets"] for c in cfgs} == {1, 2, 4}


class TestLossyDifferential:
    """Lossy links: exact cross-engine accounting where the substreams
    coincide, banded agreement where routing legitimately diverges."""

    def _run(self, topos, cfg, backend):
        topo = topos[cfg["family"]]
        n_eps = topo.n_routers * 2
        n_ranks = min(64, 1 << (n_eps.bit_length() - 1))
        channel = ChannelConfig(
            loss_prob=cfg["loss_prob"],
            jitter_ns=15.0,
            extra_latency_ns=4.0,
            max_attempts=cfg["max_attempts"],
            backoff_ns=40.0,
            seed=cfg["seed"],
        )
        sim_cfg = SimConfig(
            concentration=2,
            finite_buffers=cfg["finite"],
            buffer_bytes=2 * 4096,
            channel=channel,
        )
        net = build_synthetic_sim(
            topo, cfg["routing"], "random", 0.5, concentration=2,
            n_ranks=n_ranks, packets_per_rank=10, seed=cfg["seed"],
            config=sim_cfg, backend=backend,
        )
        return net.run()

    @pytest.mark.parametrize("cfg", _shard(_lossy_configs()), ids=_lossy_id)
    def test_lossy_runs_agree_across_engines(self, topos, cfg):
        ev = self._run(topos, cfg, "event")
        bt = self._run(topos, cfg, "batched")
        assert bt.n_injected == ev.n_injected > 0
        se, sb = ev.summary(), bt.summary()
        # Conservation on both engines: delivered + dropped == injected.
        assert len(ev.latencies_ns) + ev.n_dropped == ev.n_injected
        assert len(bt.latencies_ns) + bt.n_dropped == bt.n_injected
        if cfg["kind"] == "exact":
            # Minimal routing: equal path lengths => identical (key, hop)
            # draw sequences => IDENTICAL drop and retransmit accounting,
            # itemized by cause — not a band, an equality.
            assert dict(bt.drops) == dict(ev.drops)
            assert bt.n_retransmits == ev.n_retransmits
            assert sb["delivered"] == se["delivered"]
            assert sorted(bt.hops) == sorted(ev.hops)
            tol = (
                LOSSY_FINITE_TOLERANCES if cfg["finite"] else LOSSY_TOLERANCES
            )
            for metric, rel_tol in tol.items():
                a, b = se[metric], sb[metric]
                assert a > 0, (metric, a)
                rel = abs(b - a) / a
                assert rel <= rel_tol, (
                    f"{metric}: event={a:.2f} batched={b:.2f} "
                    f"rel={rel:.3f} > tol={rel_tol} in {_lossy_id(cfg)}"
                )
        else:
            dd = abs(se["delivered_fraction"] - sb["delivered_fraction"])
            assert dd <= LOSSY_ADAPTIVE_TOLERANCES["delivered_fraction_abs"]
            a, b = se["mean_latency_ns"], sb["mean_latency_ns"]
            rel = abs(b - a) / a
            assert rel <= LOSSY_ADAPTIVE_TOLERANCES["mean_latency_ns"], (
                f"mean_latency_ns: event={a:.1f} batched={b:.1f} "
                f"rel={rel:.3f} in {_lossy_id(cfg)}"
            )

    def test_batched_lossy_is_deterministic(self, topos):
        cfg = _lossy_configs()[0]
        a = self._run(topos, cfg, "batched")
        b = self._run(topos, cfg, "batched")
        assert a.latencies_ns == b.latencies_ns
        assert dict(a.drops) == dict(b.drops)
        assert a.n_retransmits == b.n_retransmits

    def test_lossy_sampler_covers_the_axes(self):
        cfgs = _lossy_configs()
        assert len(cfgs) >= 16
        assert {c["family"] for c in cfgs} == set(_FAMILIES)
        # Single-attempt (bare channel-loss) and bounded-retransmit
        # regimes, bufferless and finite-buffer stacks, and both exact
        # and adaptive check kinds all appear.
        assert {c["max_attempts"] for c in cfgs} >= {1, 2, 3}
        assert {c["finite"] for c in cfgs} == {True, False}
        assert {c["kind"] for c in cfgs} == {"exact", "adaptive"}


# ---------------------------------------------------------------------------
# On-demand oracle routing vs the dense tables, on the same backend
# ---------------------------------------------------------------------------
# The oracle seam (PR 8) must be *invisible* to the simulation: for the
# same (topology, policy, backend, seed), swapping the dense distance
# matrix for a CayleyOracle / LandmarkOracle must leave every delivered
# packet's latency and hop count bit-identical — the oracles answer
# min-next-hop sets in the same order and the policies consume the same
# RNG stream either way.  12 seeded configs: each family under the
# combos that exercise both engines' oracle branches.
_ORACLE_KINDS = {
    "lps": "cayley",
    "slimfly": "cayley",
    "paley": "cayley",
    "dragonfly": "landmark",
}

_ORACLE_COMBOS = (
    ("minimal", "event"),
    ("minimal", "batched"),
    ("valiant", "batched"),
)


def _oracle_configs():
    rng = np.random.default_rng(20260807)

    def choice(opts):
        return opts[int(rng.integers(len(opts)))]

    cfgs = []
    for family in sorted(_ORACLE_KINDS):
        for routing, backend in _ORACLE_COMBOS:
            cfgs.append(
                {
                    "family": family,
                    "oracle": _ORACLE_KINDS[family],
                    "routing": routing,
                    "backend": backend,
                    "pattern": choice(_PATTERNS),
                    "load": choice((0.3, 0.5, 0.7)),
                    "concentration": 2,
                    "packets_per_rank": choice((4, 6)),
                    "seed": int(rng.integers(10_000)),
                }
            )
    return cfgs


def _oracle_id(cfg):
    return (
        f"{cfg['family']}-{cfg['oracle']}-{cfg['routing']}-{cfg['backend']}"
        f"-{cfg['pattern']}-l{cfg['load']}-s{cfg['seed']}"
    )


class TestOracleDifferential:
    def _run(self, topos, cfg, oracle):
        topo = topos[cfg["family"]]
        n_eps = topo.n_routers * cfg["concentration"]
        n_ranks = min(64, 1 << (n_eps.bit_length() - 1))
        net = build_synthetic_sim(
            topo,
            cfg["routing"],
            cfg["pattern"],
            cfg["load"],
            concentration=cfg["concentration"],
            n_ranks=n_ranks,
            packets_per_rank=cfg["packets_per_rank"],
            seed=cfg["seed"],
            backend=cfg["backend"],
            oracle=oracle,
        )
        if oracle is not None:
            assert net.tables.is_lazy
            assert net.tables._dist is None, "oracle run densified"
        return net.run()

    @pytest.mark.parametrize("cfg", _shard(_oracle_configs()), ids=_oracle_id)
    def test_oracle_run_is_bit_identical_to_dense(self, topos, cfg):
        dense = self._run(topos, cfg, None)
        lazy = self._run(topos, cfg, cfg["oracle"])
        assert dense.n_injected > 0, "degenerate sample: nothing ran"
        assert lazy.n_injected == dense.n_injected
        assert lazy.latencies_ns == dense.latencies_ns
        assert lazy.hops == dense.hops
        assert lazy.t_last_delivery == dense.t_last_delivery

    def test_oracle_sampler_is_stable_and_covers_the_matrix(self):
        assert _oracle_configs() == _oracle_configs()
        cfgs = _oracle_configs()
        assert len(cfgs) == 12
        assert {c["family"] for c in cfgs} == set(_ORACLE_KINDS)
        assert {(c["routing"], c["backend"]) for c in cfgs} == set(
            _ORACLE_COMBOS
        )
        assert {c["oracle"] for c in cfgs} == {"cayley", "landmark"}


# ---------------------------------------------------------------------------
# Searched topologies: candidates from the design-space search on both
# engines (PR: spectral design-space search)
# ---------------------------------------------------------------------------
#: The two search moves produce the two searched fixtures: an edge-swap
#: candidate at (60, 4) and a signing-searched 2-lift of Paley(13) at
#: (26, 6).  Both are fully determined by their seeds, so the configs
#: below are as reproducible as the catalog-family ones above.
_SEARCHED_TOPOS = {
    "swap": lambda: __import__(
        "repro.topology.searched", fromlist=["swap_searched_topology"]
    ).swap_searched_topology(60, 4, budget=80, seed=9),
    "lift": lambda: __import__(
        "repro.topology.searched", fromlist=["lifted_topology"]
    ).lifted_topology(build_paley(13), seed=9, restarts=2, passes=1),
}

#: Four seeded configs covering both searched fixtures and all four
#: routing policies.
SEARCHED_CONFIGS = [
    {"topo": "swap", "routing": "minimal", "pattern": "random",
     "load": 0.4, "concentration": 2, "packets_per_rank": 8, "seed": 101},
    {"topo": "swap", "routing": "ugal", "pattern": "shuffle",
     "load": 0.5, "concentration": 2, "packets_per_rank": 7, "seed": 102},
    {"topo": "lift", "routing": "valiant", "pattern": "random",
     "load": 0.35, "concentration": 2, "packets_per_rank": 8, "seed": 103},
    {"topo": "lift", "routing": "ugal-g", "pattern": "transpose",
     "load": 0.45, "concentration": 4, "packets_per_rank": 6, "seed": 104},
]

#: Relative tolerance per (policy, metric) on searched topologies;
#: ``delivered`` is always exact.  Same calibration protocol as the other
#: scenario tables (docs/performance.md, searched-topology section):
#: roughly 2x the worst deviation observed over a 48-config calibration
#: grid (both searched fixtures x 4 policies x 6 sampled configs).  The
#: loose minimal-routing throughput bound is the tail race on the 26-router
#: lift fixture — makespan is one packet, and these instances are the
#: smallest the harness runs.
SEARCHED_TOLERANCES = {
    "minimal": {"mean_latency_ns": 0.06, "mean_hops": 0.02,
                "throughput_gbps": 0.30},
    "valiant": {"mean_latency_ns": 0.12, "mean_hops": 0.08,
                "throughput_gbps": 0.11},
    "ugal": {"mean_latency_ns": 0.12, "mean_hops": 0.14,
             "throughput_gbps": 0.07},
    "ugal-g": {"mean_latency_ns": 0.05, "mean_hops": 0.02,
               "throughput_gbps": 0.05},
}


def _searched_id(cfg):
    return (
        f"{cfg['topo']}-{cfg['routing']}-{cfg['pattern']}"
        f"-l{cfg['load']}-c{cfg['concentration']}-s{cfg['seed']}"
    )


@pytest.fixture(scope="module")
def searched_topos():
    return {name: build() for name, build in _SEARCHED_TOPOS.items()}


class TestSearchedDifferential:
    """A searched candidate must be an ordinary topology to both engines."""

    def _run(self, searched_topos, cfg, backend):
        topo = searched_topos[cfg["topo"]]
        n_eps = topo.n_routers * cfg["concentration"]
        n_ranks = min(64, 1 << (n_eps.bit_length() - 1))
        net = build_synthetic_sim(
            topo,
            cfg["routing"],
            cfg["pattern"],
            cfg["load"],
            concentration=cfg["concentration"],
            n_ranks=n_ranks,
            packets_per_rank=cfg["packets_per_rank"],
            seed=cfg["seed"],
            backend=backend,
        )
        return net.run()

    @pytest.mark.parametrize("cfg", _shard(SEARCHED_CONFIGS),
                             ids=_searched_id)
    def test_batched_matches_event_within_tolerance(self, searched_topos, cfg):
        ev = self._run(searched_topos, cfg, "event")
        bt = self._run(searched_topos, cfg, "batched")
        assert ev.n_injected > 0, "degenerate sample: nothing ran"
        assert bt.n_injected == ev.n_injected
        assert bt.t_first_inject == ev.t_first_inject

        se, sb = ev.summary(), bt.summary()
        assert sb["delivered"] == se["delivered"] == ev.n_injected

        tol = SEARCHED_TOLERANCES[cfg["routing"]]
        for metric, rel_tol in tol.items():
            a, b = se[metric], sb[metric]
            assert a > 0, (metric, a)
            rel = abs(b - a) / a
            assert rel <= rel_tol, (
                f"{metric}: event={a:.2f} batched={b:.2f} "
                f"rel={rel:.3f} > tol={rel_tol} in {_searched_id(cfg)}"
            )

    def test_configs_cover_both_moves_and_all_policies(self):
        assert {c["topo"] for c in SEARCHED_CONFIGS} == {"swap", "lift"}
        assert {c["routing"] for c in SEARCHED_CONFIGS} == set(_ROUTINGS)
        assert len(SEARCHED_CONFIGS) == 4

    def test_searched_fixtures_are_reproducible(self, searched_topos):
        for name, build in _SEARCHED_TOPOS.items():
            again = build()
            assert (
                again.graph.content_hash()
                == searched_topos[name].graph.content_hash()
            )
