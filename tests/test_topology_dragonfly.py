"""Tests for canonical and general DragonFly."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.metrics import diameter, girth, is_connected
from repro.topology.dragonfly import build_canonical_dragonfly, build_dragonfly


class TestCanonical:
    @pytest.mark.parametrize("a", [4, 8, 12, 24])
    def test_size_and_radix(self, a):
        t = build_canonical_dragonfly(a)
        assert t.n_routers == a * (a + 1)
        assert np.all(t.graph.degrees() == a)
        assert is_connected(t.graph)

    def test_diameter_three(self, df_12):
        assert diameter(df_12.graph) == 3

    def test_girth_three(self, df_12):
        assert girth(df_12.graph, sample=8) == 3

    def test_one_global_link_per_group_pair(self):
        a = 8
        t = build_canonical_dragonfly(a)
        edges = t.graph.edge_array()
        gu, gv = edges[:, 0] // a, edges[:, 1] // a
        cross = edges[gu != gv]
        pair_keys = gu[gu != gv] * 100 + gv[gu != gv]
        uniq, counts = np.unique(pair_keys, return_counts=True)
        assert len(uniq) == (a + 1) * a // 2  # every pair present
        assert np.all(counts == 1)

    def test_absolute_arrangement(self):
        t = build_canonical_dragonfly(8, arrangement="absolute")
        assert np.all(t.graph.degrees() == 8)
        assert diameter(t.graph) == 3

    def test_arrangements_differ(self):
        c = build_canonical_dragonfly(8, arrangement="circulant")
        a = build_canonical_dragonfly(8, arrangement="absolute")
        assert not np.array_equal(c.graph.edge_array(), a.graph.edge_array())

    def test_rejects_bad_arrangement(self):
        with pytest.raises(ParameterError):
            build_canonical_dragonfly(8, arrangement="fancy")

    def test_rejects_tiny(self):
        with pytest.raises(ParameterError):
            build_canonical_dragonfly(1)


class TestGeneral:
    def test_paper_simulation_config(self):
        # Section VI: a=16, h=8, g=69 (balanced DragonFly, 32-port routers
        # with p=8 endpoint ports).
        t = build_dragonfly(a=16, h=8, g=69)
        assert t.n_routers == 16 * 69
        degs = t.graph.degrees()
        assert degs.max() <= 15 + 8
        assert is_connected(t.graph)
        assert diameter(t.graph) == 3

    def test_small_instance(self):
        t = build_dragonfly(a=4, h=2, g=9)
        assert t.n_routers == 36
        assert is_connected(t.graph)
        # every router has a-1=3 local links and at most h=2 global.
        assert t.graph.degrees().max() <= 5

    def test_global_ports_balanced(self):
        a, h, g = 4, 2, 9
        t = build_dragonfly(a=a, h=h, g=g)
        edges = t.graph.edge_array()
        gu, gv = edges[:, 0] // a, edges[:, 1] // a
        cross = edges[gu != gv]
        counts = np.bincount(cross.ravel(), minlength=t.n_routers)
        assert counts.max() <= h

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            build_dragonfly(a=1, h=1, g=5)
        with pytest.raises(ParameterError):
            build_dragonfly(a=4, h=2, g=2)
