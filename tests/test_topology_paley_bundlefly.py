"""Tests for Paley graphs and BundleFly."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.metrics import average_distance, diameter, is_connected
from repro.spectral.eigen import adjacency_extremes
from repro.topology.bundlefly import build_bundlefly
from repro.topology.paley import build_paley


class TestPaley:
    @pytest.mark.parametrize("q", [5, 9, 13, 17, 25, 29])
    def test_degree_and_order(self, q):
        t = build_paley(q)
        assert t.graph.n == q
        assert t.graph.degree() == (q - 1) // 2

    def test_rejects_3_mod_4(self):
        with pytest.raises(ParameterError):
            build_paley(7)

    def test_paley_5_is_c5(self):
        t = build_paley(5)
        assert t.graph.num_edges == 5
        assert diameter(t.graph) == 2

    def test_paley_9_is_strongly_regular(self):
        # Paley(9) = rook's graph K3 x K3: spectrum {4, 1^4, -2^4}.
        t = build_paley(9)
        vals = np.linalg.eigvalsh(t.graph.adjacency().toarray())
        uniq = np.unique(np.round(vals, 8))
        assert np.allclose(uniq, [-2.0, 1.0, 4.0])

    def test_conference_spectrum(self):
        # Paley(q): eigenvalues (-1 +- sqrt(q))/2 besides the degree.
        q = 13
        t = build_paley(q)
        lo, hi = adjacency_extremes(t.graph)
        assert hi[-1] == pytest.approx((q - 1) / 2)
        assert hi[-2] == pytest.approx((-1 + np.sqrt(q)) / 2, abs=1e-8)
        assert lo[0] == pytest.approx((-1 - np.sqrt(q)) / 2, abs=1e-8)

    def test_self_complementary_edge_count(self):
        q = 17
        t = build_paley(q)
        assert t.graph.num_edges == q * (q - 1) // 4


class TestBundleFly:
    def test_table1_instances(self, bf_13_3):
        assert (bf_13_3.n_routers, bf_13_3.radix) == (234, 11)

    @pytest.mark.parametrize(
        "p,s,n,k",
        [
            (13, 3, 234, 11),
            (37, 3, 666, 23),
            (9, 9, 1458, 17),  # the simulated BundleFly: GF(9) Paley + MMS(9)
        ],
    )
    def test_parameter_formulas(self, p, s, n, k):
        t = build_bundlefly(p, s)
        assert t.n_routers == n
        assert t.radix == k
        assert is_connected(t.graph)

    def test_diameter_three(self, bf_13_3):
        # The star product bound: diam = diam(MMS) + 1 = 3.
        assert diameter(bf_13_3.graph) == 3

    def test_table1_average_distance(self, bf_13_3):
        # Paper Table I: 2.56 for BF(13,3).
        assert average_distance(bf_13_3.graph) == pytest.approx(2.56, abs=0.01)

    def test_bundles_are_perfect_matchings(self, bf_13_3):
        # Between adjacent groups exactly p links, one per router.
        g = bf_13_3.graph
        p = 13
        edges = g.edge_array()
        groups = edges // p
        cross = edges[groups[:, 0] != groups[:, 1]]
        # pick one group pair and check the matching property
        pair_key = groups[groups[:, 0] != groups[:, 1]]
        first = pair_key[0]
        mask = (pair_key[:, 0] == first[0]) & (pair_key[:, 1] == first[1])
        bundle = cross[mask]
        assert len(bundle) == p
        assert len(np.unique(bundle[:, 0])) == p
        assert len(np.unique(bundle[:, 1])) == p

    def test_rejects_bad_paley_parameter(self):
        with pytest.raises(ParameterError):
            build_bundlefly(7, 3)  # 7 = 3 (mod 4)
