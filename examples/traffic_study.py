#!/usr/bin/env python3
"""Traffic study: routing algorithms x traffic patterns on SpectralFly.

The Fig. 8 experiment as a script: run the four synthetic patterns under
minimal, Valiant, and UGAL-L routing on one SpectralFly instance and print
a matrix of max message times.  Shows the paper's headline routing result:
Valiant helps structured patterns and hurts random traffic, while UGAL-L
tracks the better of the two.

Run:  python examples/traffic_study.py [load]
"""

import sys

from repro import build_lps, render_table
from repro.experiments.common import run_synthetic_sim

PATTERNS = ("random", "shuffle", "reverse", "transpose")
ROUTINGS = ("minimal", "valiant", "ugal")


def main(load: float = 0.5):
    topo = build_lps(11, 7)
    print(f"{topo.name}, offered load {load}, 512 ranks\n")
    rows = []
    for pattern in PATTERNS:
        row = {"pattern": pattern}
        for routing in ROUTINGS:
            res = run_synthetic_sim(
                topo,
                routing,
                pattern,
                load,
                concentration=4,
                n_ranks=512,
                packets_per_rank=15,
                seed=1,
            )
            row[f"{routing}_max_us"] = round(res["max_latency_ns"] / 1000, 1)
        row["valiant_vs_minimal"] = round(
            row["minimal_max_us"] / row["valiant_max_us"], 2
        )
        rows.append(row)
    print(render_table(rows))
    print(
        "\nvaliant_vs_minimal > 1 means Valiant wins (expected for the "
        "structured patterns at high load; < 1 expected for random)"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
