#!/usr/bin/env python3
"""Application-motif benchmark: Ember-style workloads across topologies.

The Fig. 9/10 experiment as a script: run Halo3D-26, Sweep3D and the two
FFT decompositions over all four topology families under a chosen routing,
and print makespans plus speedups relative to DragonFly.

Run:  python examples/motif_benchmark.py [minimal|valiant|ugal] [event|batched]

The second argument picks the simulation engine: the discrete-event
reference, or the vectorized batched engine (~3x faster on these
workloads, statistically equivalent — see docs/performance.md).
"""

import sys

from repro import (
    FFTMotif,
    Halo3D26Motif,
    RoutingTables,
    SimConfig,
    Sweep3DMotif,
    build_bundlefly,
    build_canonical_dragonfly,
    build_lps,
    build_slimfly,
    make_routing,
    run_motif,
)
from repro import render_table

TOPOLOGIES = {
    "SpectralFly": (lambda: build_lps(11, 7), 4),
    "DragonFly": (lambda: build_canonical_dragonfly(12), 4),
    "SlimFly": (lambda: build_slimfly(9), 4),
    "BundleFly": (lambda: build_bundlefly(13, 3), 3),
}


def main(routing: str = "minimal", backend: str = "event"):
    n_ranks = 512
    motifs = {
        "Halo3D-26": Halo3D26Motif((8, 8, 8), iterations=2),
        "Sweep3D": Sweep3DMotif((16, 16), sweeps=2),
        "FFT balanced": FFTMotif.balanced(n_ranks),
        "FFT unbalanced": FFTMotif.unbalanced(n_ranks),
    }
    rows = []
    for motif_name, motif in motifs.items():
        times = {}
        for topo_name, (build, conc) in TOPOLOGIES.items():
            topo = build()
            tables = RoutingTables(topo.graph)
            policy = make_routing(routing, tables, seed=0)
            out = run_motif(topo, policy, motif, SimConfig(concentration=conc),
                            placement_seed=1, backend=backend)
            times[topo_name] = out["makespan_ns"]
        base = times["DragonFly"]
        row = {"motif": motif_name}
        for name, t in times.items():
            row[name] = round(base / t, 2)
        rows.append(row)
    print(f"motif speedups vs DragonFly under {routing} routing "
          f"({n_ranks} ranks, {backend} engine):\n")
    print(render_table(rows))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "minimal",
         sys.argv[2] if len(sys.argv) > 2 else "event")
