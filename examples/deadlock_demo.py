#!/usr/bin/env python3
"""Deadlock demonstration: why Section V-A's virtual channels matter.

Runs the textbook scenario on a ring with credit-based finite buffers:
every router forwards clockwise toward an antipodal destination.  With a
single virtual channel the buffer-wait cycle closes and the network wedges
— the simulator raises a structured BufferDeadlockError naming one cyclic
(edge, VC) wait-for chain (see docs/congestion.md); with the paper's
hop-incremented VC scheme (d+1 channels) the identical workload completes.

Run:  python examples/deadlock_demo.py
"""

from repro import (
    NetworkSimulator,
    RoutingPolicy,
    RoutingTables,
    SimConfig,
    Topology,
    cycle_graph,
)
from repro.errors import BufferDeadlockError


class ClockwiseRouting(RoutingPolicy):
    """Deterministic clockwise forwarding — maximally cyclic on a ring."""

    name = "clockwise"

    def __init__(self, tables, n_vcs):
        super().__init__(tables, seed=0)
        self._n_vcs = n_vcs

    def required_vcs(self):
        return self._n_vcs

    def next_hop(self, net, router, pkt):
        return (router + 1) % self.tables.graph.n


def run_ring(n_vcs: int, n: int = 12, packets_per_node: int = 6):
    topo = Topology(name=f"ring{n}", family="demo", graph=cycle_graph(n))
    tables = RoutingTables(topo.graph)
    cfg = SimConfig(
        concentration=1,
        finite_buffers=True,
        buffer_bytes=4096,  # exactly one packet per (link, VC) buffer
        packet_bytes=4096,
    )
    net = NetworkSimulator(topo, ClockwiseRouting(tables, n_vcs), cfg,
                           tables=tables)
    for src in range(n):
        for _ in range(packets_per_node):
            net.send(src, (src + n // 2) % n)
    return net.run()


def main():
    n = 12
    print(f"ring of {n} routers, clockwise routing, 1-packet buffers\n")
    for n_vcs in (1, 2, n // 2 + 1):
        try:
            stats = run_ring(n_vcs, n=n)
        except BufferDeadlockError as err:
            witness = " -> ".join(f"e{e}/vc{v}" for e, v in err.cycle)
            print(
                f"VCs={n_vcs}: DEADLOCKED  delivered="
                f"{err.stats.summary()['delivered']}/{err.stats.n_injected}"
                f"  (stuck packets: {err.undelivered})"
                f"\n        wait-for cycle: {witness}"
            )
            continue
        print(
            f"VCs={n_vcs}: completed  "
            f"delivered={stats.summary()['delivered']}/{stats.n_injected}"
        )
    print(
        "\nhop-incremented VCs make the channel dependency graph acyclic "
        "(diameter+1 channels suffice for minimal routing — Section V-A)"
    )


if __name__ == "__main__":
    main()
