#!/usr/bin/env python3
"""Layout & cost study: machine-room wiring, power, and latency.

The Table II / Fig. 11 pipeline as a script: place a SpectralFly/SlimFly
pair in the computed machine room with the QAP heuristic, report wire
lengths and the electrical/optical power split, then sweep switch latency
against a SkyWalk instance in the same room.

Run:  python examples/layout_cost.py
"""

from repro import (
    MachineRoom,
    bisection_bandwidth,
    build_lps,
    build_skywalk,
    build_slimfly,
    latency_statistics,
    layout_topology,
    native_layout,
    power_report,
    render_table,
)


def main():
    pair = (build_lps(11, 7), build_slimfly(9))
    rows = []
    layouts = {}
    for topo in pair:
        layout = layout_topology(topo, seed=0)
        layouts[topo.name] = layout
        cut = bisection_bandwidth(topo.graph, repeats=2)
        rows.append(power_report(layout, cut))
    print(render_table(rows))

    print("\nlatency vs a SkyWalk instance in the same machine room:")
    lat_rows = []
    for topo in pair:
        room = MachineRoom(topo.n_routers)
        sky = native_layout(build_skywalk(topo.n_routers, topo.radix, seed=1),
                            room=room)
        for s in (0.0, 100.0, 250.0):
            avg, mx = latency_statistics(layouts[topo.name], s)
            sky_avg, sky_mx = latency_statistics(sky, s)
            lat_rows.append(
                {
                    "topology": topo.name,
                    "switch_ns": s,
                    "avg_ns": round(avg, 1),
                    "vs_skywalk": round(avg / sky_avg, 3),
                    "max_ns": round(mx, 1),
                    "max_vs_skywalk": round(mx / sky_mx, 3),
                }
            )
    print(render_table(lat_rows))


if __name__ == "__main__":
    main()
