#!/usr/bin/env python3
"""Quickstart: build a SpectralFly topology, verify it, and simulate traffic.

Covers the three layers of the library in ~60 lines:

1. construct an LPS (SpectralFly) topology and a DragonFly of similar size;
2. check the structural/spectral properties the paper is built on;
3. run a quick uniform-random traffic simulation under UGAL-L routing and
   compare the two.

Run:  python examples/quickstart.py
"""

from repro import (
    NetworkSimulator,
    SimConfig,
    RoutingTables,
    average_distance,
    bisection_bandwidth,
    build_canonical_dragonfly,
    build_lps,
    diameter,
    is_ramanujan,
    lambda_g,
    make_routing,
    make_traffic,
    mu1,
    place_ranks,
    ramanujan_bound,
)
from repro import OpenLoopSource


def analyze(topo):
    g = topo.graph
    print(f"\n=== {topo.name} ===")
    print(f"routers={topo.n_routers}  radix={topo.radix}  links={topo.n_links}")
    print(f"diameter={diameter(g)}  avg distance={average_distance(g):.2f}")
    print(f"lambda(G)={lambda_g(g):.3f}  (Ramanujan bound {ramanujan_bound(topo.radix):.3f})")
    print(f"mu1={mu1(g):.3f}  Ramanujan? {is_ramanujan(g)}")
    print(f"bisection bandwidth (METIS-style estimate): {bisection_bandwidth(g, repeats=2)} links")


def simulate(topo, n_ranks=256, load=0.5, concentration=4, seed=0):
    tables = RoutingTables(topo.graph)
    routing = make_routing("ugal", tables, seed=seed)
    net = NetworkSimulator(topo, routing, SimConfig(concentration=concentration),
                          tables=tables)
    rank_to_ep = place_ranks(n_ranks, net.n_endpoints, seed=seed)
    pattern = make_traffic("random", n_ranks)
    for rank in range(n_ranks):
        net.add_open_loop_source(
            OpenLoopSource(rank, int(rank_to_ep[rank]), pattern, rank_to_ep,
                           offered_load=load, packets_per_rank=20,
                           seed=seed * 7919 + rank)
        )
    s = net.run().summary()
    print(f"{topo.name}: mean latency {s['mean_latency_ns']:.0f} ns, "
          f"max {s['max_latency_ns']:.0f} ns, mean hops {s['mean_hops']:.2f}, "
          f"Valiant fraction {s['valiant_fraction']:.2f}")
    return s


def main():
    spectralfly = build_lps(11, 7)  # Table I class 1: 168 routers, radix 12
    dragonfly = build_canonical_dragonfly(12)  # 156 routers, radix 12

    analyze(spectralfly)
    analyze(dragonfly)

    print("\n=== uniform random traffic @ 50% offered load, UGAL-L ===")
    s_lps = simulate(spectralfly)
    s_df = simulate(dragonfly)
    speedup = s_df["max_latency_ns"] / s_lps["max_latency_ns"]
    print(f"\nSpectralFly speedup over DragonFly (max message time): {speedup:.2f}x")


if __name__ == "__main__":
    main()
