#!/usr/bin/env python3
"""The comparison the paper skipped: SpectralFly vs Xpander vs Jellyfish.

Section II argues LPS graphs beat both the randomized Jellyfish (provably
sub-Ramanujan) and lift-based Xpander (almost-Ramanujan) on spectral
expansion — but excludes Xpander from the evaluation as impractical to
construct.  Our randomized 2-lift implementation makes the three-way
spectral and structural comparison runnable.

Run:  python examples/xpander_comparison.py
"""

from repro import (
    average_distance,
    bisection_bandwidth,
    build_jellyfish,
    build_lps,
    diameter,
    lambda_g,
    mu1,
    ramanujan_bound,
)
from repro import build_xpander, render_table


def main():
    lps = build_lps(11, 7)  # 168 routers, radix 12
    xpander = build_xpander(degree=12, target_routers=lps.n_routers, seed=0)
    jellyfish = build_jellyfish(lps.n_routers, 12, seed=0)

    bound = ramanujan_bound(12)
    rows = []
    for topo in (lps, xpander, jellyfish):
        g = topo.graph
        rows.append(
            {
                "topology": topo.name,
                "routers": topo.n_routers,
                "lambda": round(lambda_g(g), 3),
                "lambda/bound": round(lambda_g(g) / bound, 3),
                "mu1": round(mu1(g), 3),
                "diameter": diameter(g),
                "avg_dist": round(average_distance(g), 2),
                "bisection": bisection_bandwidth(g, repeats=2),
            }
        )
    print(f"Ramanujan bound for radix 12: {bound:.3f}\n")
    print(render_table(rows))
    print(
        "\nexpected: LPS at or below the bound (ratio <= 1); Xpander close "
        "behind; Jellyfish a little further; structural metrics similar — "
        "the LPS advantage is its *deterministic, wiring-friendly* optimality"
    )


if __name__ == "__main__":
    main()
