#!/usr/bin/env python3
"""Design-space exploration: pick a SpectralFly instance for a target system.

Reproduces the Fig. 4 workflow interactively: given a desired router radix
and system size, list the feasible LPS instances near the target, compare
with what SlimFly/BundleFly/DragonFly can offer at that radix, and report
the spectral quality of the chosen instance.

Run:  python examples/design_space.py [radix] [target_routers]
"""

import sys

from repro import (
    build_lps,
    feasible_sizes_per_radix,
    is_ramanujan,
    lps_design_space,
    lps_mu1_guarantee,
    mu1,
)


def main(target_radix: int = 12, target_routers: int = 2000):
    print(f"target: radix ~{target_radix}, ~{target_routers} routers\n")

    # All feasible LPS instances with that radix (p = radix - 1).
    rows = [
        r for r in lps_design_space(300, 300) if r["radix"] == target_radix
    ]
    rows.sort(key=lambda r: abs(r["vertices"] - target_routers))
    print(f"{len(rows)} LPS instances with radix {target_radix}; closest five:")
    for r in rows[:5]:
        print(
            f"  LPS({r['p']},{r['q']}): {r['vertices']} routers "
            f"({abs(r['vertices'] - target_routers)} from target)"
        )

    # What the competing families offer at (or adjacent to) this radix.
    print("\ncompeting families at radix within +-1:")
    feas = feasible_sizes_per_radix(max_vertices=100_000, max_param=300)
    for fam in ("SlimFly", "BundleFly", "DragonFly"):
        near = [
            (k, n) for k, n in feas[fam] if abs(k - target_radix) <= 1
        ]
        near.sort(key=lambda kn: abs(kn[1] - target_routers))
        desc = ", ".join(f"k={k}: {n}" for k, n in near[:4]) or "none"
        print(f"  {fam:<10} {desc}")

    # Build the winner and verify its spectral quality.
    best = rows[0]
    print(f"\nbuilding LPS({best['p']},{best['q']}) ...")
    topo = build_lps(best["p"], best["q"])
    print(
        f"  mu1 = {mu1(topo.graph):.3f} "
        f"(Ramanujan guarantee {lps_mu1_guarantee(topo.radix):.3f}), "
        f"Ramanujan: {is_ramanujan(topo.graph)}"
    )


if __name__ == "__main__":
    radix = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    routers = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    main(radix, routers)
