#!/usr/bin/env python3
"""Resilience study: structural properties under random link failures.

The Fig. 5 experiment as a script: sweep edge-failure proportions on a
SpectralFly/SlimFly pair and watch the paper's two headline effects —
SlimFly's fragile diameter-2 (it jumps at 10% failures) and SpectralFly's
durable bisection-bandwidth lead.

Run:  python examples/resilience_study.py
"""

import numpy as np

from repro import (
    average_distance,
    bisection_bandwidth,
    build_lps,
    build_slimfly,
    delete_random_edges,
    diameter,
    is_connected,
    render_table,
)


def measure(topo, proportions, trials=3, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for prop in proportions:
        diams, dists, cuts = [], [], []
        for _ in range(trials if prop > 0 else 1):
            g = delete_random_edges(topo.graph, prop, rng)
            if not is_connected(g):
                continue
            diams.append(diameter(g))
            dists.append(average_distance(g))
            cuts.append(bisection_bandwidth(g, repeats=1, seed=0))
        rows.append(
            {
                "topology": topo.name,
                "failed_%": int(prop * 100),
                "diameter": round(float(np.mean(diams)), 2),
                "avg_hops": round(float(np.mean(dists)), 2),
                "bisection": round(float(np.mean(cuts)), 0),
            }
        )
    return rows


def main():
    proportions = (0.0, 0.1, 0.2, 0.3, 0.4)
    rows = []
    for topo in (build_lps(11, 7), build_slimfly(9)):
        rows.extend(measure(topo, proportions))
    print(render_table(rows))
    print(
        "\nexpected: SF diameter jumps from 2 at 10% failures; "
        "LPS keeps higher bisection throughout"
    )


if __name__ == "__main__":
    main()
