"""Approximate statement coverage of src/repro under the test suite.

A stdlib stand-in for ``pytest --cov=repro`` on machines without
pytest-cov: a ``sys.settrace`` hook records executed lines of files under
``src/repro`` while pytest runs, and the denominator is the set of
statement-bearing lines from each module's compiled code objects
(``co_lines``), which is close to coverage.py's statement set.

Used once per change to re-measure the floor pinned in the CI coverage
job (``--cov-fail-under``); expect the pinned value to sit a few points
below this script's number to absorb the two tools' small counting
differences.

Usage: python scripts/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import pathlib
import sys
import threading

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
PREFIX = str(SRC / "repro") + "/"

# `python -m pytest` puts the rootdir on sys.path (benchmarks/ imports
# itself as a package); running via this script must do the same.
for p in (str(ROOT), str(SRC)):
    if p not in sys.path:
        sys.path.insert(0, p)

executed: dict[str, set[int]] = {}


def _local(frame, event, arg):
    if event == "line":
        executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local


def _global(frame, event, arg):
    fn = frame.f_code.co_filename
    if not fn.startswith(PREFIX):
        return None
    lines = executed.get(fn)
    if lines is None:
        lines = executed[fn] = set()
    lines.add(frame.f_lineno)
    return _local


def _statement_lines(path: pathlib.Path) -> set[int]:
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        for const in co.co_consts:
            if type(const) is type(co):
                stack.append(const)
        for _, _, lineno in co.co_lines():
            if lineno is not None:
                lines.add(lineno)
    return lines


def main() -> int:
    import pytest

    sys.settrace(_global)
    threading.settrace(_global)
    rc = pytest.main(sys.argv[1:] or ["-x", "-q"])
    sys.settrace(None)
    threading.settrace(None)

    total_stmts = 0
    total_hit = 0
    rows = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        stmts = _statement_lines(path)
        hit = executed.get(str(path), set()) & stmts
        total_stmts += len(stmts)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(stmts) if stmts else 100.0
        rows.append((pct, str(path.relative_to(SRC)), len(hit), len(stmts)))
    for pct, name, hit, stmts in sorted(rows):
        print(f"{pct:6.1f}%  {hit:5d}/{stmts:<5d}  {name}")
    overall = 100.0 * total_hit / max(1, total_stmts)
    print(f"\nOVERALL {overall:.2f}% ({total_hit}/{total_stmts} statement lines)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
