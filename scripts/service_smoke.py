#!/usr/bin/env python
"""End-to-end smoke test for the experiment service (``repro serve``).

Run from the repo root (CI does): ``PYTHONPATH=src python scripts/service_smoke.py``.

Exercises the full loop against a real HTTP server on an ephemeral port
and a throwaway artifact store:

1. two overlapping fig3 sweeps — the second's shared cell must stream as
   a ``cell-result`` with ``from_cache: true``;
2. eight concurrent submissions, all completing, deduplicating through
   the shared store;
3. a table1 run cancelled mid-flight after its first streamed cell —
   the job ends ``cancelled``, the store holds no tempfiles and no
   partial entries, and a resubmission reuses the completed cells;
4. store metrics (hits/misses/evictions/reaped tempfiles) visible in
   ``GET /status``.

Exit status 0 on success, 1 with a traceback on any failed check.
"""

from __future__ import annotations

import pickle
import sys
import tempfile
import time
import traceback

from repro.service import ArtifactStore, JobQueue, ServiceClient, make_server
from repro.service.api import start_in_thread
from repro.utils.diskcache import set_default_cache


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def wait_for_cell_result(client: ServiceClient, job_id: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    since = 0
    while time.monotonic() < deadline:
        page = client.events(job_id, since=since, timeout=1.0)
        for event in page["events"]:
            since = event["seq"] + 1
            if event["kind"] == "cell-result":
                return
        if page["state"] in ("done", "failed", "cancelled"):
            raise AssertionError(
                f"{job_id} reached {page['state']} before any cell-result"
            )
    raise AssertionError(f"no cell-result from {job_id} within {timeout}s")


def main() -> int:
    store = ArtifactStore(tempfile.mkdtemp(prefix="repro-smoke-store-"))
    set_default_cache(store)  # keep topology intermediates hermetic too
    queue = JobQueue(store, workers=4)
    server = make_server(queue, port=0)
    start_in_thread(server)
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")

    # -- 1. overlapping sweeps deduplicate cell-by-cell ------------------
    first = client.submit("fig3", overrides={"instances": [[3, 7]]})
    done = client.wait(first["id"], timeout=300.0)
    check(done["state"] == "done", f"first sweep ended {done['state']}")

    second = client.submit("fig3", overrides={"instances": [[3, 7], [3, 17]]})
    events = list(client.stream(second["id"]))
    check(events[-1]["kind"] == "job-done", f"stream ended with {events[-1]['kind']}")
    cell_results = [e["data"] for e in events if e["kind"] == "cell-result"]
    check(len(cell_results) == 2, f"expected 2 streamed cells, saw {len(cell_results)}")
    check(
        any(c["from_cache"] for c in cell_results),
        "second sweep recomputed its shared (3,7) cell",
    )
    check(
        all(c["rows"] for c in cell_results),
        "a streamed cell-result carried no rows",
    )
    print("overlapping sweeps: shared cell served from cache")

    # -- 2. eight concurrent submissions all complete --------------------
    variants = [[[3, 7]], [[3, 17]], [[3, 7], [3, 17]], [[3, 17], [3, 7]]]
    hits_before = store.stats()["session_hits"]
    submitted = [
        client.submit("fig3", overrides={"instances": variants[i % len(variants)]})
        for i in range(8)
    ]
    for snap in submitted:
        final = client.wait(snap["id"], timeout=300.0)
        check(final["state"] == "done", f"{snap['id']} ended {final['state']}")
    check(
        store.stats()["session_hits"] > hits_before,
        "concurrent submissions produced no cache hits",
    )
    print("8 concurrent submissions: all done, dedup through shared store")

    # -- 3. cancellation mid-flight leaves a clean store -----------------
    job = client.submit("table1", force=True)
    wait_for_cell_result(client, job["id"])
    client.cancel(job["id"])
    final = client.wait(job["id"], timeout=300.0)
    check(final["state"] == "cancelled", f"cancel ended {final['state']}")
    tmp = list(store.root.glob("**/*.tmp"))
    check(not tmp, f"cancelled job stranded tempfiles: {tmp}")
    for path in store.root.glob("*/*.pkl"):
        with open(path, "rb") as fh:
            pickle.load(fh)  # raises on a torn/partial entry
    redo = client.submit("table1")
    final = client.wait(redo["id"], timeout=300.0)
    check(final["state"] == "done", f"resubmit ended {final['state']}")
    report = final["reports"][0]
    check(
        report["from_cache"] or report["n_cached_cells"] >= 1,
        f"resubmit reused no cells: {report}",
    )
    print("mid-flight cancel: clean store, completed cells reused")

    # -- 4. store metrics surface through /status ------------------------
    status = client.status()
    for key in ("session_hits", "session_misses", "session_evictions",
                "tmp_files", "hit_rate"):
        check(key in status["store"], f"/status store metrics missing {key}")
    check(status["store"]["session_hits"] > 0, "store reports zero hits")
    print(f"store metrics: {status['store']['session_hits']} hits, "
          f"{status['store']['session_misses']} misses, "
          f"hit rate {status['store']['hit_rate']}")

    server.shutdown()
    server.server_close()
    queue.shutdown(timeout=30.0)
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except Exception:
        traceback.print_exc()
        sys.exit(1)
