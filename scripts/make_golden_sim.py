"""Regenerate the golden-stats corpus (``tests/golden/sim_small.json``).

The cell list, field set, and runner live in ``tests/test_sim_golden.py``
so the generator and the regression test can never disagree about what a
cell is.  Run this only when a change *intentionally* alters event-engine
behaviour, commit the diff, and explain the regeneration in the commit
message.

Usage: python scripts/make_golden_sim.py
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
for p in (str(ROOT / "src"), str(ROOT / "tests")):
    if p not in sys.path:
        sys.path.insert(0, p)

from test_sim_golden import (  # noqa: E402
    CELLS,
    GOLDEN_PATH,
    N_RANKS,
    PACKETS_PER_RANK,
    cell_id,
    collect_cell,
)


def main() -> int:
    corpus = {
        "schema": 1,
        "kind": "repro-sim-golden",
        "backend": "event",
        "n_ranks": N_RANKS,
        "packets_per_rank": PACKETS_PER_RANK,
        "cells": {},
    }
    for cell in CELLS:
        name = cell_id(cell)
        print(f"  {name}...")
        corpus["cells"][name] = collect_cell(cell)
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(corpus, indent=1) + "\n")
    n_lat = sum(len(c["latencies_ns"]) for c in corpus["cells"].values())
    print(f"wrote {GOLDEN_PATH} ({len(CELLS)} cells, {n_lat} packets)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
