"""Regenerate the golden-stats corpus (``tests/golden/sim_small.json``).

The cell list, field set, and runner live in ``tests/test_sim_golden.py``
so the generator and the regression test can never disagree about what a
cell is.  Run this only when a change *intentionally* alters event-engine
behaviour, commit the diff, and explain the regeneration in the commit
message.

Usage: python scripts/make_golden_sim.py
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
for p in (str(ROOT / "src"), str(ROOT / "tests")):
    if p not in sys.path:
        sys.path.insert(0, p)

from test_sim_golden import (  # noqa: E402
    CELLS,
    COLLECTIVE_CELLS,
    CONGESTION_CELLS,
    FAULT_CELLS,
    GOLDEN_PATH,
    MOTIF_CELLS,
    N_RANKS,
    ORACLE_CELLS,
    PACKETS_PER_RANK,
    SEARCHED_CELLS,
    cell_id,
    collect_cell,
    collect_collective_cell,
    collect_congestion_cell,
    collect_fault_cell,
    collect_motif_cell,
    collect_oracle_cell,
    collect_searched_cell,
    collective_cell_id,
    congestion_cell_id,
    fault_cell_id,
    motif_cell_id,
    oracle_cell_id,
    searched_cell_id,
)


def main() -> int:
    corpus = {
        "schema": 6,
        "kind": "repro-sim-golden",
        "backend": "event",
        "n_ranks": N_RANKS,
        "packets_per_rank": PACKETS_PER_RANK,
        "cells": {},
        "motif_cells": {},
        "fault_cells": {},
        "collective_cells": {},
        "congestion_cells": {},
        "oracle_cells": {},
        "searched_cells": {},
    }
    for cell in CELLS:
        name = cell_id(cell)
        print(f"  {name}...")
        corpus["cells"][name] = collect_cell(cell)
    for cell in MOTIF_CELLS:
        name = motif_cell_id(cell)
        print(f"  motif {name}...")
        corpus["motif_cells"][name] = collect_motif_cell(cell)
    for cell in FAULT_CELLS:
        name = fault_cell_id(cell)
        print(f"  faulted {name}...")
        corpus["fault_cells"][name] = collect_fault_cell(cell)
    for cell in COLLECTIVE_CELLS:
        name = collective_cell_id(cell)
        print(f"  collective {name}...")
        corpus["collective_cells"][name] = collect_collective_cell(cell)
    for cell in CONGESTION_CELLS:
        name = congestion_cell_id(cell)
        print(f"  congested {name}...")
        corpus["congestion_cells"][name] = collect_congestion_cell(cell)
    for cell in ORACLE_CELLS:
        name = oracle_cell_id(cell)
        print(f"  oracle {name}...")
        corpus["oracle_cells"][name] = collect_oracle_cell(cell)
    for cell in SEARCHED_CELLS:
        name = searched_cell_id(cell)
        print(f"  searched {name}...")
        corpus["searched_cells"][name] = collect_searched_cell(cell)
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(corpus, indent=1) + "\n")
    n_lat = sum(len(c["latencies_ns"]) for c in corpus["cells"].values())
    print(
        f"wrote {GOLDEN_PATH} ({len(CELLS)} open-loop cells / {n_lat} "
        f"packets, {len(MOTIF_CELLS)} motif cells, "
        f"{len(FAULT_CELLS)} faulted cells, "
        f"{len(COLLECTIVE_CELLS)} collective cells, "
        f"{len(CONGESTION_CELLS)} congested cells, "
        f"{len(ORACLE_CELLS)} oracle cells, "
        f"{len(SEARCHED_CELLS)} searched cells)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
