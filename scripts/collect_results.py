#!/usr/bin/env python3
"""Run every experiment driver and dump the tables to results/.

Used to populate EXPERIMENTS.md.  Small-scale defaults; pass --full for the
paper-scale configurations.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.experiments import (
    contention,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    saturation,
    survey,
    table1,
    table2,
)

OUT = pathlib.Path(__file__).resolve().parent.parent / "results"


def main(full: bool = False) -> None:
    OUT.mkdir(exist_ok=True)
    jobs = {
        "table1": lambda: table1.run(classes=(1, 2, 3, 4, 5) if full else (1, 2, 3)),
        "fig3": lambda: fig3.run(),
        "fig4_design_space": lambda: fig4.run_design_space(300),
        "fig4_normalized_bisection": lambda: fig4.run_normalized_bisection(
            max_p=12, max_q=14
        ),
        "fig4_bisection_comparison": lambda: fig4.run_bisection_comparison(
            classes=(1, 2, 3) if full else (1, 2)
        ),
        "fig5": lambda: fig5.run(
            class_id=2 if full else 1,
            proportions=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5) if full else (0.0, 0.1, 0.2, 0.3),
            max_trials_per_batch=10 if full else 2,
        ),
        "fig6": lambda: fig6.run(loads=(0.1, 0.3, 0.5, 0.7), packets_per_rank=15),
        "fig7": lambda: fig7.run(loads=(0.1, 0.3, 0.5, 0.7), packets_per_rank=15),
        "fig8": lambda: fig8.run(loads=(0.1, 0.3, 0.5, 0.7), packets_per_rank=15),
        "fig9": lambda: fig9.run(),
        "fig10": lambda: fig10.run(),
        "table2": lambda: table2.run(pairs=table2.TABLE2_PAIRS,
                                     skywalk_instances=3),
        "fig11": lambda: fig11.run(pairs=table2.TABLE2_PAIRS,
                                   skywalk_instances=3),
        "survey": lambda: survey.run(),
        "saturation": lambda: saturation.run(),
        "contention": lambda: contention.run(),
    }
    for name, job in jobs.items():
        t0 = time.time()
        try:
            result = job()
        except Exception as exc:  # keep collecting the rest
            (OUT / f"{name}.txt").write_text(f"FAILED: {exc}\n")
            print(f"{name}: FAILED ({exc})")
            continue
        text = result.to_text()
        (OUT / f"{name}.txt").write_text(text + "\n")
        print(f"{name}: done in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
