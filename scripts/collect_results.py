#!/usr/bin/env python3
"""Run every experiment and dump the tables to results/.

Kept as a thin back-compat shim: the real driver is now the unified
experiment CLI, ``python -m repro report`` (see ``repro.runner``), which
adds result caching and ``--jobs N`` parallelism on top of what this
script used to do.

Usage::

    python scripts/collect_results.py [--full] [--jobs N] [-o DIR]

is equivalent to::

    python -m repro report [--full] [--jobs N] [-o DIR]
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.runner.cli import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:]
    default_out = pathlib.Path(__file__).resolve().parent.parent / "results"
    if "-o" not in argv and "--out" not in argv:
        argv += ["--out", str(default_out)]
    sys.exit(main(["report"] + argv))
