"""Benchmark: regenerate the four panels of Figure 4."""

from benchmarks.conftest import registry_driver, run_once


def test_fig4_design_space(benchmark):
    max_pq = 300  # the paper's exact sweep
    run, params = registry_driver("fig4.design_space", max_pq=max_pq)
    result = run_once(benchmark, run, **params)
    print()
    print(f"{len(result.rows)} feasible LPS instances below p,q < {max_pq}")
    radii = {r["radix"] for r in result.rows}
    assert len(radii) > 30  # dense radix coverage (no big gaps)


def test_fig4_normalized_bisection(benchmark):
    run, params = registry_driver("fig4.normalized_bisection")
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())
    # Shape: larger radix -> larger normalized bisection (on average).
    by_radix = {}
    for r in result.rows:
        by_radix.setdefault(r["radix"], []).append(r["normalized"])
    radii = sorted(by_radix)
    if len(radii) >= 2:
        assert max(by_radix[radii[-1]]) > min(by_radix[radii[0]])


def test_fig4_feasible_sizes(benchmark):
    run, params = registry_driver("fig4.feasible_sizes", max_vertices=10_000)
    result = run_once(benchmark, run, **params)
    print()
    counts: dict[str, dict[int, int]] = {}
    for r in result.rows:
        counts.setdefault(r["family"], {}).setdefault(r["radix"], 0)
        counts[r["family"]][r["radix"]] += 1
    summary = {
        fam: (len(per), max(per.values())) for fam, per in counts.items()
    }
    print("family -> (#radix values, max sizes per radix):", summary)
    # Shape (Fig 4 lower left): SlimFly and DragonFly have exactly ONE
    # feasible size per radix; LPS offers many sizes at a fixed radix.
    assert summary["SlimFly"][1] == 1
    assert summary["DragonFly"][1] == 1
    assert summary["LPS"][1] >= 3


def test_fig4_bisection_comparison(benchmark):
    run, params = registry_driver("fig4.bisection_comparison")
    classes = params["classes"]
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())
    # Shape: per class, LPS and SlimFly far above BundleFly and DragonFly;
    # LPS normalized bisection at least SlimFly-competitive.
    for cid in classes:
        rows = {r["topology"].split("(")[0]: r for r in result.rows
                if r["class"] == cid}
        lps = rows["LPS"]["normalized"]
        assert lps > rows["DF"]["normalized"]
        assert lps > rows["BF"]["normalized"]
