"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
the same rows the paper reports.  Default configurations are laptop-scale;
set ``REPRO_FULL=1`` to run the paper-scale configurations (hours, mostly
spent in the ~7K-router size classes and the 8K-endpoint simulations).
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    """True when REPRO_FULL=1 requests paper-scale benchmark runs."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scale() -> str:
    return "paper" if full_scale() else "small"


def run_once(benchmark, fn, *args, **kwargs):
    """pedantic single-shot run: these are experiments, not microbenchmarks."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


def registry_driver(name: str, **overrides):
    """Resolve a registered experiment to ``(driver, kwargs)`` at harness scale.

    The benchmarks and the ``python -m repro`` CLI share one registry
    (:mod:`repro.runner.registry`), so a figure's benchmark and its CLI
    invocation always run the same driver with the same preset parameters;
    ``overrides`` keeps benchmark-specific deviations explicit.
    """
    from repro.runner import get_experiment

    exp = get_experiment(name)
    preset = "full" if full_scale() else "small"
    return exp.resolve(), exp.params(preset, overrides)
