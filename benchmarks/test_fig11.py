"""Benchmark: regenerate Figure 11 (latency relative to SkyWalk)."""

from benchmarks.conftest import full_scale, registry_driver, run_once


def test_fig11_latency_vs_skywalk(benchmark):
    run, params = registry_driver(
        "fig11", skywalk_instances=5 if full_scale() else 2
    )
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())

    # Shape: at realistic switch latencies (>= 100 ns) LPS and SF typically
    # have lower average end-to-end latency than SkyWalk.  The paper itself
    # exempts LPS(19,7) ("Except for LPS(19,7), both topologies typically
    # have lower end-to-end latency") — its radix-20 SkyWalk twin simply
    # has the better hop count, and the ratio climbs with switch latency.
    for name in {r["topology"] for r in result.rows}:
        series = sorted(
            (r for r in result.rows if r["topology"] == name),
            key=lambda r: r["switch_ns"],
        )
        hot = [r for r in series if r["switch_ns"] >= 100.0]
        if name == "LPS(19,7)":
            assert all(r["avg_ratio_vs_skywalk"] < 1.25 for r in hot)
            continue
        assert all(r["avg_ratio_vs_skywalk"] < 1.1 for r in hot), name
