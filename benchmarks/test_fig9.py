"""Benchmark: regenerate Figure 9 (Ember motifs, minimal routing)."""

from benchmarks.conftest import registry_driver, run_once


def test_fig9_motifs_minimal(benchmark):
    run, params = registry_driver("fig9", routing="minimal")
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())
    by = {(r["motif"], r["topology"]): r["speedup_vs_df"] for r in result.rows}
    # Shape: SpectralFly ahead of DragonFly on the neighbour-exchange motif
    # (paper: ~1.2x) and competitive on the latency-chain wavefront (the
    # paper's ~1.4x gap needs the 8.7K-endpoint congestion level; at small
    # scale the chain latencies of the two diameter-3 topologies are close).
    assert by[("Halo3D-26", "SpectralFly")] > 1.0
    assert by[("Sweep3D", "SpectralFly")] > 0.85
    # Shape: SpectralFly ahead of DragonFly on the unbalanced FFT (the
    # paper's balanced-FFT DragonFly win needs its 16-router groups at the
    # full 8.7K-endpoint scale; the small canonical DF(12) groups don't
    # produce the alignment benefit).
    assert by[("FFT (unbalanced)", "SpectralFly")] >= 1.0
