"""Benchmark: regenerate Table I (basic structural properties)."""

from benchmarks.conftest import registry_driver, run_once


def test_table1(benchmark):
    run, params = registry_driver("table1")
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())
    # Paper-shape assertions: exact diameters and average distances.
    for row in result.rows:
        if "paper_diam" in row:
            assert row["diameter"] == row["paper_diam"], row["topology"]
            assert abs(row["avg_distance"] - row["paper_avg"]) <= 0.02
            assert abs(row["mu1"] - row["paper_mu1"]) <= 0.02
