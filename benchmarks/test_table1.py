"""Benchmark: regenerate Table I (basic structural properties)."""

from benchmarks.conftest import full_scale, run_once
from repro.experiments import table1


def test_table1(benchmark):
    classes = (1, 2, 3, 4, 5) if full_scale() else (1, 2, 3)
    result = run_once(benchmark, table1.run, classes=classes)
    print()
    print(result.to_text())
    # Paper-shape assertions: exact diameters and average distances.
    for row in result.rows:
        if "paper_diam" in row:
            assert row["diameter"] == row["paper_diam"], row["topology"]
            assert abs(row["avg_distance"] - row["paper_avg"]) <= 0.02
            assert abs(row["mu1"] - row["paper_mu1"]) <= 0.02
