"""Benchmark: regenerate Figure 5 (structural resilience to link failures)."""

from benchmarks.conftest import full_scale, registry_driver, run_once


def test_fig5_link_failures(benchmark):
    overrides = (
        {"proportions": (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)} if full_scale() else {}
    )
    run, kw = registry_driver("fig5", **overrides)
    result = run_once(benchmark, run, **kw)
    print()
    print(result.to_text())

    by = {(r["topology"].split("(")[0], r["failed"]): r for r in result.rows}
    lps_name = "LPS"
    props = kw["proportions"]
    # Shape 1: SlimFly's diameter-2 is fragile — it exceeds LPS growth rate
    # at 10% failures (paper: SF jumps to ~4).
    assert by[("SF", 0.1)]["diameter"] >= 3
    # Shape 2: LPS keeps the bisection-bandwidth lead over SlimFly at 0-20%.
    for p in props[:3]:
        assert (
            by[(lps_name, p)]["bisection"] >= 0.8 * by[("SF", p)]["bisection"]
        )
    # Shape 3: SlimFly keeps the lowest average hop count.
    for p in props:
        assert by[("SF", p)]["avg_hops"] <= by[(lps_name, p)]["avg_hops"] + 0.05
