"""Benchmark: regenerate Table II (wire length and energy efficiency)."""

from benchmarks.conftest import full_scale, registry_driver, run_once


def test_table2_layout_cost(benchmark):
    run, params = registry_driver(
        "table2", skywalk_instances=5 if full_scale() else 2
    )
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())

    rows = result.rows
    for i in range(0, len(rows), 2):
        lps, sf = rows[i], rows[i + 1]
        # Shape 1: LPS and SlimFly wire lengths within ~15% of each other.
        assert abs(lps["avg_wire_m"] - sf["avg_wire_m"]) / sf["avg_wire_m"] < 0.15
        # Shape 2: SkyWalk needs longer average wires than the QAP-laid-out
        # expander topologies (paper: ~20-30% longer).
        assert lps["skywalk_avg_wire_m"] > lps["avg_wire_m"]
        # Shape 3: power per bandwidth within ~35% of each other, LPS
        # typically at least as efficient (paper: 5-15% better).
        assert lps["mw_per_gbps"] < 1.35 * sf["mw_per_gbps"]
