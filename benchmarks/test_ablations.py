"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper artifacts — these quantify why the implementation makes the
choices it makes:

* BundleFly bundle matchings: the star product's non-residue linear maps
  (diameter 3, paper-matching average distance) vs naive identity
  matchings (diameter 4).
* DragonFly global-link arrangement: circulant vs absolute — Hastings et
  al. [36] report circulant gives the better bisection bandwidth, which is
  why the paper (and our DF builder) default to it.
* Virtual-channel budget: d+1 hop-incremented VCs vs a single channel —
  with measured (non-blocking) buffers throughput is unchanged, showing the
  VC scheme is purely a deadlock-freedom mechanism, not a performance one.
* Valiant bias in UGAL-L: how the adaptive threshold shifts the
  minimal/Valiant split under congestion.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.common import run_synthetic_sim
from repro.graphs.metrics import average_distance, diameter
from repro.partition import bisection_bandwidth
from repro.topology import build_bundlefly, build_canonical_dragonfly


def test_ablation_bundlefly_matching(benchmark):
    def run():
        star = build_bundlefly(13, 3, matching="nonresidue")
        naive = build_bundlefly(13, 3, matching="identity")
        return {
            "star": (diameter(star.graph), average_distance(star.graph)),
            "naive": (diameter(naive.graph), average_distance(naive.graph)),
        }

    out = run_once(benchmark, run)
    print()
    print(f"non-residue matching: diameter={out['star'][0]}, "
          f"avg={out['star'][1]:.2f} (paper Table I: 3 / 2.56)")
    print(f"identity matching:    diameter={out['naive'][0]}, "
          f"avg={out['naive'][1]:.2f}")
    assert out["star"][0] == 3
    assert out["naive"][0] == 4
    assert out["star"][1] < out["naive"][1]


def test_ablation_dragonfly_arrangement(benchmark):
    def run():
        rows = {}
        for arrangement in ("circulant", "absolute"):
            topo = build_canonical_dragonfly(16, arrangement=arrangement)
            rows[arrangement] = bisection_bandwidth(
                topo.graph, repeats=3, seed=0
            )
        return rows

    out = run_once(benchmark, run)
    print()
    print(f"bisection bandwidth: circulant={out['circulant']}, "
          f"absolute={out['absolute']} (Hastings et al. [36]: circulant >=)")
    assert out["circulant"] >= out["absolute"]


def test_ablation_vc_budget(benchmark):
    """VC count does not change delivered throughput with measured buffers."""
    from repro.routing import RoutingTables, MinimalRouting
    from repro.sim import NetworkSimulator, SimConfig
    from repro.topology import build_lps

    def run():
        topo = build_lps(11, 7)
        tables = RoutingTables(topo.graph)
        out = {}
        for n_vcs in (1, tables.diameter + 1):
            class FixedVC(MinimalRouting):
                def required_vcs(self, _n=n_vcs):
                    return _n

            net = NetworkSimulator(
                topo, FixedVC(tables, seed=0), SimConfig(concentration=4),
                tables=tables,
            )
            rng = np.random.default_rng(0)
            for _ in range(2000):
                s, d = rng.integers(0, net.n_endpoints, 2)
                if s != d:
                    net.send(int(s), int(d))
            out[n_vcs] = net.run().summary()["mean_latency_ns"]
        return out

    out = run_once(benchmark, run)
    print()
    print(f"mean latency by VC count: {out}")
    vals = list(out.values())
    assert abs(vals[0] - vals[1]) / vals[0] < 0.2


def test_ablation_ugal_bias(benchmark):
    """Larger Valiant bias -> fewer Valiant diversions at the same load."""
    from repro.experiments.common import cached_tables
    from repro.routing import UGALRouting
    from repro.sim import NetworkSimulator, SimConfig, make_traffic, place_ranks
    from repro.sim.traffic import OpenLoopSource
    from repro.topology import build_lps

    def run():
        topo = build_lps(11, 7)
        tables = cached_tables(topo)
        fractions = {}
        for bias in (0, 10_000_000):
            routing = UGALRouting(tables, seed=0, bias_bytes=bias)
            net = NetworkSimulator(topo, routing, SimConfig(concentration=4),
                                   tables=tables)
            n_ranks = 256
            r2e = place_ranks(n_ranks, net.n_endpoints, seed=1)
            pat = make_traffic("transpose", n_ranks)
            for rank in range(n_ranks):
                net.add_open_loop_source(
                    OpenLoopSource(rank, int(r2e[rank]), pat, r2e, 0.7, 15,
                                   seed=rank)
                )
            fractions[bias] = net.run().summary()["valiant_fraction"]
        return fractions

    out = run_once(benchmark, run)
    print()
    print(f"Valiant fraction by bias: {out}")
    assert out[10_000_000] <= out[0]
