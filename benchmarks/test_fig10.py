"""Benchmark: regenerate Figure 10 (Ember motifs, UGAL routing)."""

from benchmarks.conftest import registry_driver, run_once


def test_fig10_motifs_ugal(benchmark):
    run, params = registry_driver("fig10")
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())
    by = {(r["motif"], r["topology"]): r["speedup_vs_df"] for r in result.rows}
    # Shape: SpectralFly competitive-or-better on Halo3D-26 and Sweep3D
    # under UGAL; on FFT it stays within striking distance of DragonFly
    # (paper: ~90% on the balanced motif) and above SlimFly/BundleFly.
    assert by[("Halo3D-26", "SpectralFly")] > 0.9
    assert by[("Sweep3D", "SpectralFly")] > 0.9
    assert (
        by[("FFT (balanced)", "SpectralFly")]
        >= by[("FFT (balanced)", "SlimFly")] - 0.15
    )
