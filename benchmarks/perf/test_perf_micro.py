"""Micro benchmarks for the simulator hot-path primitives.

Tracked counterparts of the ``micro`` section of ``BENCH_sim.json``
(``python -m repro bench``): directed-edge-id lookup, minimal-next-hop
selection from the flat table, and block-drawn RNG.  pytest-benchmark
prints ops/s; the assertions only pin correctness, not speed, so CI noise
cannot fail the suite.
"""

import numpy as np
import pytest

from repro.routing import RoutingTables, make_routing
from repro.topology import build_lps


@pytest.fixture(scope="module")
def env():
    topo = build_lps(11, 7)  # the small-preset SpectralFly instance
    tables = RoutingTables(topo.graph)
    tables.build_fast_path()
    policy = make_routing("minimal", tables, seed=0)
    return topo.graph, tables, policy


def test_edge_id_lookup(benchmark, env):
    g, tables, _ = env
    rng = np.random.default_rng(0)
    heads = np.repeat(np.arange(g.n), np.diff(g.indptr))
    pick = rng.integers(0, len(g.indices), size=2048)
    pairs = list(zip(heads[pick].tolist(), g.indices[pick].tolist()))

    def lookups():
        edge_id = tables.directed_edge_id
        return [edge_id(u, v) for u, v in pairs]

    ids = benchmark(lookups)
    assert all(0 <= e < len(g.indices) for e in ids)


def test_min_next_hop_draw(benchmark, env):
    g, tables, policy = env
    rng = np.random.default_rng(1)
    pairs = [
        (int(u), int(d))
        for u, d in rng.integers(0, g.n, size=(2048, 2))
        if u != d
    ]

    def draws():
        pick = policy._random_minimal
        return [pick(u, d) for u, d in pairs]

    hops = benchmark(draws)
    for (u, d), h in zip(pairs, hops):
        assert tables.dist_flat[h * g.n + d] == tables.dist_flat[u * g.n + d] - 1


def test_batched_rand01(benchmark, env):
    _, _, policy = env

    def draws():
        rand01 = policy._rand01
        return [rand01() for _ in range(2048)]

    values = benchmark(draws)
    assert all(0.0 <= v < 1.0 for v in values)
