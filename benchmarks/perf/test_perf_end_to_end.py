"""End-to-end simulator throughput: the smoke cells of ``repro bench``.

Runs the same cells as ``python -m repro bench --preset smoke`` under
pytest-benchmark, so simulator packets/s shows up in the ordinary
benchmark output alongside the figure regenerations.  Assertions check
only that the cells deliver all their traffic — speed is reported, never
gated (see ``BENCH_sim.json`` for the tracked trajectory).
"""

import pytest

from repro.runner.bench import BENCH_PRESETS, run_cell
from repro.topology import SIM_CONFIGS


@pytest.mark.parametrize("backend", BENCH_PRESETS["smoke"]["backends"])
@pytest.mark.parametrize(
    "routing,pattern", BENCH_PRESETS["smoke"]["cells"], ids=lambda c: str(c)
)
def test_smoke_cell_throughput(benchmark, routing, pattern, backend):
    spec = BENCH_PRESETS["smoke"]
    cfg = SIM_CONFIGS[spec["scale"]]
    topo_spec = cfg["topologies"][spec["topologies"][0]]
    topo = topo_spec["build"]()

    row = benchmark.pedantic(
        run_cell,
        args=(topo, routing, pattern, spec["load"]),
        kwargs=dict(
            concentration=topo_spec["concentration"],
            n_ranks=spec["n_ranks"],
            packets_per_rank=spec["packets_per_rank"],
            backend=backend,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(
        f"{row['topology']} {routing}/{pattern} [{backend}]: "
        f"{row['packets_per_s']:,.0f} pkt/s, {row['events_per_s']:,.0f} ev/s"
    )
    assert row["delivered"] > 0
    assert row["events"] > row["delivered"]  # several events per packet
