"""Benchmark: regenerate Figure 6 (UGAL-L speedup vs DragonFly)."""

from benchmarks.conftest import run_once
from repro.experiments import fig6


def test_fig6_ugal_speedups(benchmark, scale):
    loads = (0.1, 0.3, 0.5, 0.7)
    result = run_once(
        benchmark,
        fig6.run,
        scale=scale,
        loads=loads,
        packets_per_rank=15,
    )
    print()
    print(result.to_text())

    # Shape: SpectralFly at or above DragonFly for most (pattern, load)
    # combinations (the paper shows it best everywhere at 8.7K endpoints;
    # small-scale runs allow a little noise).
    sf_rows = [r for r in result.rows if r["topology"] == "SpectralFly"]
    wins = sum(1 for r in sf_rows if r["speedup_vs_df"] >= 0.95)
    assert wins >= int(0.7 * len(sf_rows)), (
        f"SpectralFly >=0.95x DragonFly in only {wins}/{len(sf_rows)} cases"
    )
