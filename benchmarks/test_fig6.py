"""Benchmark: regenerate Figure 6 (UGAL-L speedup vs DragonFly)."""

from benchmarks.conftest import registry_driver, run_once


def test_fig6_ugal_speedups(benchmark):
    run, params = registry_driver(
        "fig6", loads=(0.1, 0.3, 0.5, 0.7), packets_per_rank=15
    )
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())

    # Shape: SpectralFly at or above DragonFly for most (pattern, load)
    # combinations (the paper shows it best everywhere at 8.7K endpoints;
    # small-scale runs allow a little noise).
    sf_rows = [r for r in result.rows if r["topology"] == "SpectralFly"]
    wins = sum(1 for r in sf_rows if r["speedup_vs_df"] >= 0.95)
    assert wins >= int(0.7 * len(sf_rows)), (
        f"SpectralFly >=0.95x DragonFly in only {wins}/{len(sf_rows)} cases"
    )
