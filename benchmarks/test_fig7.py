"""Benchmark: regenerate Figure 7 (minimal routing, random traffic)."""

from benchmarks.conftest import registry_driver, run_once


def test_fig7_minimal_random(benchmark):
    run, params = registry_driver(
        "fig7", loads=(0.1, 0.3, 0.5, 0.7), packets_per_rank=15
    )
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())
    # Shape: under load, the three low-diameter topologies beat DragonFly.
    hot = [r for r in result.rows if r["load"] >= 0.5 and r["topology"] != "DragonFly"]
    assert all(r["speedup_vs_df"] > 1.0 for r in hot)
