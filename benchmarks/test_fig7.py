"""Benchmark: regenerate Figure 7 (minimal routing, random traffic)."""

from benchmarks.conftest import run_once
from repro.experiments import fig7


def test_fig7_minimal_random(benchmark, scale):
    result = run_once(
        benchmark,
        fig7.run,
        scale=scale,
        loads=(0.1, 0.3, 0.5, 0.7),
        packets_per_rank=15,
    )
    print()
    print(result.to_text())
    # Shape: under load, the three low-diameter topologies beat DragonFly.
    hot = [r for r in result.rows if r["load"] >= 0.5 and r["topology"] != "DragonFly"]
    assert all(r["speedup_vs_df"] > 1.0 for r in hot)
