"""Benchmark: regenerate Figure 8 (Valiant vs minimal on SpectralFly)."""

from benchmarks.conftest import registry_driver, run_once


def test_fig8_valiant_vs_minimal(benchmark):
    run, params = registry_driver(
        "fig8", loads=(0.1, 0.3, 0.5, 0.7), packets_per_rank=15
    )
    result = run_once(benchmark, run, **params)
    print()
    print(result.to_text())
    # Shape (paper): Valiant *hurts* random traffic — minimal paths on LPS
    # already have the diversity, and Valiant doubles the path length.
    random_rows = [r for r in result.rows if r["pattern"] == "random"]
    assert sum(
        1 for r in random_rows if r["valiant_speedup_vs_minimal"] < 1.0
    ) >= len(random_rows) - 1
