"""Benchmark: regenerate Figure 8 (Valiant vs minimal on SpectralFly)."""

from benchmarks.conftest import run_once
from repro.experiments import fig8


def test_fig8_valiant_vs_minimal(benchmark, scale):
    result = run_once(
        benchmark,
        fig8.run,
        scale=scale,
        loads=(0.1, 0.3, 0.5, 0.7),
        packets_per_rank=15,
    )
    print()
    print(result.to_text())
    # Shape (paper): Valiant *hurts* random traffic — minimal paths on LPS
    # already have the diversity, and Valiant doubles the path length.
    random_rows = [r for r in result.rows if r["pattern"] == "random"]
    assert sum(
        1 for r in random_rows if r["valiant_speedup_vs_minimal"] < 1.0
    ) >= len(random_rows) - 1
