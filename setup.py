"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses pyproject.toml (PEP 517); on machines where that
fails for lack of a wheel builder, `python setup.py develop` installs the
same editable package.
"""

from setuptools import setup

setup()
